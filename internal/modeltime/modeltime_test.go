package modeltime

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeDev is a minimal DeviceClock with the device package's monotonic
// clamp semantics.
type fakeDev struct {
	clock time.Duration
}

func (d *fakeDev) Now() time.Duration { return d.clock }
func (d *fakeDev) SyncClock(t time.Duration) {
	if t > d.clock {
		d.clock = t
	}
}

func TestTimelineMakespanIsMax(t *testing.T) {
	tl := NewTimeline()
	if tl.Makespan() != 0 {
		t.Fatalf("fresh timeline makespan = %v, want 0", tl.Makespan())
	}
	tl.Observe(3 * time.Second)
	tl.Observe(time.Second) // lower observation must not regress
	tl.Observe(2 * time.Second)
	if got := tl.Makespan(); got != 3*time.Second {
		t.Errorf("makespan = %v, want 3s", got)
	}
}

func TestTimelineConcurrentObserve(t *testing.T) {
	tl := NewTimeline()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				tl.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got, want := tl.Makespan(), 8000*time.Microsecond; got != want {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestNilTimelineIsSafe(t *testing.T) {
	var tl *Timeline
	tl.Observe(time.Second)
	if tl.Makespan() != 0 {
		t.Error("nil timeline should read zero")
	}
}

func TestUserClockSyncForwardIsMonotonic(t *testing.T) {
	tl := NewTimeline()
	dev := &fakeDev{clock: 5 * time.Second}
	c := tl.UserClock(dev)
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", c.Now())
	}
	c.SyncForward(2 * time.Second) // must clamp, not rewind
	if c.Now() != 5*time.Second {
		t.Errorf("SyncForward rewound the clock to %v", c.Now())
	}
	c.SyncForward(9 * time.Second)
	if c.Now() != 9*time.Second {
		t.Errorf("SyncForward to 9s left clock at %v", c.Now())
	}
	if tl.Makespan() != 9*time.Second {
		t.Errorf("timeline makespan = %v, want 9s", tl.Makespan())
	}
}

func TestUserClockObservePublishes(t *testing.T) {
	tl := NewTimeline()
	dev := &fakeDev{}
	c := tl.UserClock(dev)
	dev.clock = 7 * time.Second // the device advanced itself (serving)
	if tl.Makespan() != 0 {
		t.Fatal("makespan moved before Observe")
	}
	c.Observe()
	if tl.Makespan() != 7*time.Second {
		t.Errorf("makespan = %v, want 7s", tl.Makespan())
	}
}

func TestPacer(t *testing.T) {
	var off Pacer
	if off.Enabled() || off.Pause(time.Second) != 0 {
		t.Error("zero pacer must be disabled")
	}
	p := Pacer{Scale: 0.001}
	if !p.Enabled() {
		t.Error("scaled pacer should be enabled")
	}
	if got := p.Pause(time.Second); got != time.Millisecond {
		t.Errorf("Pause(1s) = %v, want 1ms", got)
	}
	if got := p.Pause(10 * time.Minute); got != DefaultMaxPause {
		t.Errorf("uncapped pause = %v, want default cap %v", got, DefaultMaxPause)
	}
	p.MaxPause = 2 * time.Millisecond
	if got := p.Pause(time.Minute); got != 2*time.Millisecond {
		t.Errorf("capped pause = %v, want 2ms", got)
	}
	if p.Pause(-time.Second) != 0 {
		t.Error("negative model time must not pause")
	}
}

// TestSyncClockCallersAreConfined is the acceptance guard for the
// model-time refactor: internal/modeltime is the only package outside
// internal/device (and the facade's documentation-free test trees)
// that may construct or advance model clocks, so device.SyncClock must
// have no callers anywhere else in the source tree.
func TestSyncClockCallersAreConfined(t *testing.T) {
	root := filepath.Join("..", "..")
	allowed := map[string]bool{
		filepath.Join("internal", "device"):    true,
		filepath.Join("internal", "modeltime"): true,
	}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !strings.Contains(string(raw), ".SyncClock(") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if !allowed[filepath.Dir(rel)] {
			t.Errorf("%s calls SyncClock; model clocks may only be advanced via internal/modeltime", rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-5, 1}, {10, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %g) did not panic", tc.n, tc.s)
				}
			}()
			New(tc.n, tc.s)
		}()
	}
}

func TestCDFMonotoneAndNormalized(t *testing.T) {
	d := New(1000, 0.8)
	prev := 0.0
	for i := 0; i < d.N(); i++ {
		c := d.CDF(i)
		if c < prev {
			t.Fatalf("CDF not monotone at rank %d: %g < %g", i, c, prev)
		}
		prev = c
	}
	if got := d.CDF(d.N() - 1); got != 1 {
		t.Errorf("CDF(last) = %g, want 1", got)
	}
	if got := d.CDF(d.N() + 10); got != 1 {
		t.Errorf("CDF beyond range = %g, want 1", got)
	}
	if got := d.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %g, want 0", got)
	}
}

func TestPSumsToOne(t *testing.T) {
	d := New(500, 1.1)
	sum := 0.0
	for i := 0; i < d.N(); i++ {
		sum += d.P(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum of P = %g, want 1", sum)
	}
}

func TestPDecreasesWithRank(t *testing.T) {
	d := New(200, 0.7)
	for i := 1; i < d.N(); i++ {
		if d.P(i) > d.P(i-1)+1e-12 {
			t.Fatalf("P(%d)=%g > P(%d)=%g", i, d.P(i), i-1, d.P(i-1))
		}
	}
}

func TestUniformWhenExponentZero(t *testing.T) {
	d := New(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(d.P(i)-0.1) > 1e-12 {
			t.Errorf("P(%d) = %g, want 0.1", i, d.P(i))
		}
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	d := New(100, 1.0)
	r := rand.New(rand.NewSource(42))
	const draws = 200000
	counts := make([]int, d.N())
	for i := 0; i < draws; i++ {
		counts[d.Sample(r)]++
	}
	// Check the head of the distribution against expected mass.
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / draws
		want := d.P(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical P(%d) = %g, want %g (±0.01)", i, got, want)
		}
	}
}

func TestSampleInRange(t *testing.T) {
	f := func(seed int64) bool {
		d := New(37, 0.9)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := d.Sample(r)
			if v < 0 || v >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConcentrationReference sanity-checks the theoretical top-share
// arithmetic the workload calibration relied on: at s=1.20 a bounded
// Zipf over 100k ranks carries ~90% of its mass in the top 5000, while
// at s=0.80 over 1M ranks the top 5000 carry ~30%. (The workload
// generator uses slightly lower exponents because finite-sample repeat
// amplification adds empirical concentration on top of these curves.)
func TestConcentrationReference(t *testing.T) {
	nav := New(100000, 1.20)
	if got := nav.TopShare(5000); got < 0.85 || got > 0.95 {
		t.Errorf("s=1.20 top-5000 share = %.3f, want ~0.90", got)
	}
	nonNav := New(1000000, 0.80)
	if got := nonNav.TopShare(5000); got < 0.25 || got > 0.35 {
		t.Errorf("s=0.80 top-5000 share = %.3f, want ~0.30", got)
	}
}

func BenchmarkSample(b *testing.B) {
	d := New(1000000, 0.8)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(r)
	}
}

// TestSampleSeedRegression pins the sampling path to its seed: the
// same source must reproduce the identical rank sequence (the whole
// workload pipeline leans on this), and a different seed must not.
func TestSampleSeedRegression(t *testing.T) {
	d := New(5000, 0.9)
	draw := func(seed int64, n int) []int {
		r := rand.New(rand.NewSource(seed))
		out := make([]int, n)
		for i := range out {
			out[i] = d.Sample(r)
		}
		return out
	}
	a, b := draw(1234, 2000), draw(1234, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs for identical seeds: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(1235, 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds reproduced the identical 2000-sample sequence")
	}
}

// Package zipf provides deterministic, seedable samplers for bounded
// Zipf-like popularity distributions.
//
// The mobile search workload model in this repository (see
// internal/workload) is built on power-law popularity curves fitted to
// the aggregate statistics reported in the Pocket Cloudlets paper
// (ASPLOS 2011, Section 4): navigational queries follow a steep curve
// (top 5000 queries cover ~90% of navigational volume) while
// non-navigational queries follow a shallow one (top 5000 cover ~30%).
// The standard library's rand.Zipf only supports exponents s > 1, so
// this package implements a general bounded sampler over ranks
// 1..N with probability proportional to rank^(-s) for any s >= 0,
// using a precomputed cumulative table and binary search.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a bounded Zipf distribution over ranks 0..N-1 where the
// probability of rank i is proportional to (i+1)^(-s).
type Dist struct {
	n   int
	s   float64
	cum []float64 // cum[i] = P(rank <= i); cum[n-1] == 1
}

// New builds a bounded Zipf distribution over n ranks with exponent s.
// It panics if n <= 0 or s < 0, as both indicate a programming error.
func New(n int, s float64) *Dist {
	if n <= 0 {
		panic(fmt.Sprintf("zipf: non-positive rank count %d", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("zipf: negative exponent %g", s))
	}
	d := &Dist{n: n, s: s, cum: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		d.cum[i] = total
	}
	inv := 1 / total
	for i := range d.cum {
		d.cum[i] *= inv
	}
	d.cum[n-1] = 1 // guard against floating-point shortfall
	return d
}

// N reports the number of ranks in the distribution.
func (d *Dist) N() int { return d.n }

// S reports the exponent of the distribution.
func (d *Dist) S() float64 { return d.s }

// Sample draws a rank in [0, N) using the provided random source.
func (d *Dist) Sample(r *rand.Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(d.cum, u)
}

// P returns the probability mass of the given rank.
func (d *Dist) P(rank int) float64 {
	if rank < 0 || rank >= d.n {
		return 0
	}
	if rank == 0 {
		return d.cum[0]
	}
	return d.cum[rank] - d.cum[rank-1]
}

// CDF returns the cumulative probability of ranks 0..rank inclusive.
// Ranks at or beyond N-1 return 1.
func (d *Dist) CDF(rank int) float64 {
	if rank < 0 {
		return 0
	}
	if rank >= d.n {
		return 1
	}
	return d.cum[rank]
}

// TopShare reports the fraction of total volume carried by the k most
// popular ranks. It is the quantity the paper plots in Figure 4.
func (d *Dist) TopShare(k int) float64 { return d.CDF(k - 1) }

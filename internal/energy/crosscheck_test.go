package energy_test

import (
	"testing"
	"time"

	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/energy"
	"pocketcloudlets/internal/radio"
)

// TestRadioParamsSourceEnergyConstants asserts the radio parameter
// sets carry exactly the envelopes internal/energy defines — the
// deduplication contract: one source of truth, byte-identical through
// the refactor.
func TestRadioParamsSourceEnergyConstants(t *testing.T) {
	cases := []struct {
		params radio.Params
		power  energy.RadioPower
	}{
		{radio.ThreeG(), energy.Radio3G()},
		{radio.EDGE(), energy.RadioEDGE()},
		{radio.WiFi(), energy.RadioWiFi()},
	}
	for _, tc := range cases {
		if tc.params.ExtraActivePower != tc.power.ExtraActiveW ||
			tc.params.ExtraTailPower != tc.power.ExtraTailW ||
			tc.params.ExtraIdlePower != tc.power.ExtraIdleW ||
			tc.params.TailDuration != tc.power.TailDuration {
			t.Errorf("%s params %+v diverge from energy envelope %+v", tc.params.Name, tc.params, tc.power)
		}
	}
}

func TestDeviceBaseSourcesEnergyConstant(t *testing.T) {
	if got := device.DefaultConfig().BasePower; got != energy.DeviceBaseW {
		t.Errorf("device base power = %v, want energy.DeviceBaseW %v", got, energy.DeviceBaseW)
	}
}

// TestFormulaEquivalence asserts the radio energy formulas are
// bit-identical with the pre-refactor inline arithmetic for every
// built-in technology.
func TestFormulaEquivalence(t *testing.T) {
	for _, p := range radio.Technologies() {
		for _, d := range []time.Duration{0, 378 * time.Millisecond, 4411 * time.Millisecond, time.Minute} {
			if got, legacy := p.ActiveEnergy(d), p.ExtraActivePower*d.Seconds(); got != legacy {
				t.Errorf("%s ActiveEnergy(%v) = %v, want %v", p.Name, d, got, legacy)
			}
		}
		if got, legacy := p.TailEnergy(), p.ExtraTailPower*p.TailDuration.Seconds(); got != legacy {
			t.Errorf("%s TailEnergy = %v, want %v", p.Name, got, legacy)
		}
	}
}

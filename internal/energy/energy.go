// Package energy is the single source of truth for the simulation's
// power constants and the typed joule accounting every layer charges
// through.
//
// Three layers consume energy, and before this package each kept its
// own ad-hoc float fields and duplicated constants:
//
//   - the radio link (internal/radio): extra active/tail/idle draw on
//     top of the device baseline, per technology;
//   - the device (internal/device): the screen+CPU baseline while the
//     user is busy or waiting;
//   - the fleet (internal/fleet): shards as cloudlet servers with an
//     idle/active power envelope, so a provisioned-but-empty shard
//     still costs joules — the quantity the autoscaler exists to
//     reclaim (Green Cloudlet Network is the reference model).
//
// Two accumulator types cover the two concurrency regimes:
//
//   - Meter: a plain float64 accumulator for single-owner components
//     (one radio link, one device). Its arithmetic is exactly the
//     `j += watts * d.Seconds()` the historic fields used, in the same
//     call order, so the refactor is bit-identical.
//   - Counter: a fixed-point (nanojoule) atomic counter for the fleet,
//     where many workers charge concurrently. Each Add rounds its
//     contribution to integer nanojoules independently and the integer
//     adds commute, so totals are independent of worker interleaving —
//     the same determinism discipline as modeltime.Timeline.
package energy

import (
	"math"
	"sync/atomic"
	"time"
)

// RadioPower is the energy-relevant parameter slice of one radio
// technology: the extra draw (on top of the device baseline) in each
// link state, and how long the post-transfer tail lasts.
type RadioPower struct {
	// ExtraActiveW is the added draw while transmitting or receiving.
	ExtraActiveW float64
	// ExtraTailW is the added draw during the post-transfer tail.
	ExtraTailW float64
	// ExtraIdleW is the added draw while idle (paging, beacons).
	ExtraIdleW float64
	// TailDuration is how long the link lingers in Tail after a
	// transfer before demoting to Idle.
	TailDuration time.Duration
}

// The built-in technologies, calibrated to the paper's Figure 15b/16
// energy measurements. internal/radio composes these with its latency
// parameters; nothing else may restate the numbers.

// Radio3G is the 3G (UMTS/HSPA) power envelope.
func Radio3G() RadioPower {
	return RadioPower{
		ExtraActiveW: 0.45,
		ExtraTailW:   0.30,
		ExtraIdleW:   0.01,
		TailDuration: 5 * time.Second,
	}
}

// RadioEDGE is the EDGE (2.75G) power envelope.
func RadioEDGE() RadioPower {
	return RadioPower{
		ExtraActiveW: 0.55,
		ExtraTailW:   0.30,
		ExtraIdleW:   0.01,
		TailDuration: 5 * time.Second,
	}
}

// RadioWiFi is the 802.11g power envelope.
func RadioWiFi() RadioPower {
	return RadioPower{
		ExtraActiveW: 0.65,
		ExtraTailW:   0.25,
		ExtraIdleW:   0.02,
		TailDuration: 2 * time.Second,
	}
}

// DeviceBaseW is the screen+CPU draw while the device is in use, in
// watts. Figure 16 shows ~900 mW during local serving.
const DeviceBaseW = 0.9

// ShardPower is the power envelope of one fleet shard modeled as a
// cloudlet server: a constant idle draw for as long as the shard is
// provisioned, plus an active increment while it is serving. The
// defaults describe a small edge server, not a phone — provisioning a
// shard that serves nothing still costs IdleW continuously, which is
// exactly the waste an occupancy-driven autoscaler reclaims on the
// trough of the diurnal curve.
type ShardPower struct {
	// IdleW is the draw of a provisioned shard doing nothing, in watts.
	IdleW float64
	// ActiveW is the draw while serving; the increment over IdleW is
	// integrated over the shard's busy time.
	ActiveW float64
}

// DefaultShardPower is the default cloudlet-server envelope.
func DefaultShardPower() ShardPower {
	return ShardPower{IdleW: 10, ActiveW: 25}
}

// WithDefaults fills zero fields from DefaultShardPower.
func (p ShardPower) WithDefaults() ShardPower {
	def := DefaultShardPower()
	if p.IdleW <= 0 {
		p.IdleW = def.IdleW
	}
	if p.ActiveW <= 0 {
		p.ActiveW = def.ActiveW
	}
	return p
}

// IdleJ is the joules a shard draws over a provisioned window,
// independent of load.
func (p ShardPower) IdleJ(provisioned time.Duration) float64 {
	return Integrate(p.IdleW, provisioned)
}

// ActiveJ is the joules a shard draws on top of idle over its busy
// time.
func (p ShardPower) ActiveJ(busy time.Duration) float64 {
	return Integrate(p.ActiveW-p.IdleW, busy)
}

// Integrate is the one power-integration formula in the system:
// watts over a model-time interval. Every energy charge — radio,
// device and shard — reduces to it, so refactored call sites stay
// bit-identical with the historic inline `watts * d.Seconds()`.
func Integrate(watts float64, d time.Duration) float64 {
	return watts * d.Seconds()
}

// Meter is a sequential joule accumulator for a single-owner component
// (a radio link, a device). It is intentionally a plain float64 with
// no locking: the owners are single-threaded under their model clocks,
// and float addition in call order preserves the exact historic sums.
type Meter struct {
	j float64
}

// Charge integrates watts over d and adds the joules.
func (m *Meter) Charge(watts float64, d time.Duration) {
	m.j += Integrate(watts, d)
}

// Add adds a precomputed joule amount.
func (m *Meter) Add(j float64) { m.j += j }

// Joules returns the accumulated total.
func (m *Meter) Joules() float64 { return m.j }

// Reset clears the meter.
func (m *Meter) Reset() { m.j = 0 }

// Counter is a concurrency-safe joule counter in fixed-point
// nanojoules. Each Add converts its contribution to integer
// nanojoules independently; the integer additions commute and
// associate, so the total is deterministic under any worker
// interleaving (unlike accumulating float64s, where summation order
// changes the low bits).
type Counter struct {
	nj atomic.Int64
}

// Add accumulates j joules.
func (c *Counter) Add(j float64) {
	c.nj.Add(int64(math.Round(j * 1e9)))
}

// Charge integrates watts over d and accumulates the joules.
func (c *Counter) Charge(watts float64, d time.Duration) {
	c.Add(Integrate(watts, d))
}

// Joules returns the accumulated total.
func (c *Counter) Joules() float64 {
	return float64(c.nj.Load()) / 1e9
}

// Ledger groups a fleet's atomic joule counters by origin, so one
// cross-footable breakdown — device radios, device baselines, shard
// idle floor, shard active increment — comes out of a single API
// instead of being reassembled from per-package fields.
type Ledger struct {
	// Radio is the devices' extra radio draw (active shares, tails)
	// on the cloud-miss path.
	Radio Counter
	// DeviceBase is the devices' baseline draw over modeled response
	// time.
	DeviceBase Counter
	// ShardIdle is the shards' provisioned idle floor. Retired shards'
	// integrals are folded in when they leave the fleet; live shards'
	// accrue lazily against the model timeline at snapshot time.
	ShardIdle Counter
	// ShardActive is the shards' active increment over busy time.
	ShardActive Counter
}

// Snapshot is a point-in-time ledger reading, in joules.
type Snapshot struct {
	RadioJ       float64
	DeviceBaseJ  float64
	ShardIdleJ   float64
	ShardActiveJ float64
}

// Snapshot reads every counter.
func (l *Ledger) Snapshot() Snapshot {
	return Snapshot{
		RadioJ:       l.Radio.Joules(),
		DeviceBaseJ:  l.DeviceBase.Joules(),
		ShardIdleJ:   l.ShardIdle.Joules(),
		ShardActiveJ: l.ShardActive.Joules(),
	}
}

// ShardJ is the fleet-side total: idle floor plus active increment.
func (s Snapshot) ShardJ() float64 { return s.ShardIdleJ + s.ShardActiveJ }

// TotalJ is the whole-system total across device and fleet sides.
func (s Snapshot) TotalJ() float64 {
	return s.RadioJ + s.DeviceBaseJ + s.ShardJ()
}

package energy

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestLegacyConstantValues pins the relocated power constants to the
// exact literals internal/radio and internal/device carried before the
// ledger refactor. These are calibration facts (Figure 15b/16), not
// tunables: a drift here silently recalibrates every experiment.
func TestLegacyConstantValues(t *testing.T) {
	cases := []struct {
		name string
		got  RadioPower
		want RadioPower
	}{
		{"3g", Radio3G(), RadioPower{0.45, 0.30, 0.01, 5 * time.Second}},
		{"edge", RadioEDGE(), RadioPower{0.55, 0.30, 0.01, 5 * time.Second}},
		{"wifi", RadioWiFi(), RadioPower{0.65, 0.25, 0.02, 2 * time.Second}},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s power = %+v, want legacy %+v", tc.name, tc.got, tc.want)
		}
	}
	if DeviceBaseW != 0.9 {
		t.Errorf("DeviceBaseW = %v, want legacy 0.9", DeviceBaseW)
	}
}

// TestIntegrateMatchesLegacyFormula verifies the shared integration
// helper is bit-identical with the historic inline expression, for the
// exact operand values the radio model produces.
func TestIntegrateMatchesLegacyFormula(t *testing.T) {
	durations := []time.Duration{
		0, time.Nanosecond, 378 * time.Millisecond, 2 * time.Second,
		5*time.Second + 123*time.Microsecond, time.Hour,
	}
	watts := []float64{0.01, 0.25, 0.30, 0.45, 0.55, 0.65, 0.9}
	for _, w := range watts {
		for _, d := range durations {
			legacy := w * d.Seconds()
			if got := Integrate(w, d); got != legacy {
				t.Fatalf("Integrate(%v, %v) = %v, want bit-identical %v", w, d, got, legacy)
			}
		}
	}
}

func TestMeterMatchesPlainAccumulation(t *testing.T) {
	var m Meter
	var legacy float64
	charges := []struct {
		w float64
		d time.Duration
	}{
		{0.45, 4411 * time.Millisecond},
		{0.30, 5 * time.Second},
		{0.01, 77 * time.Millisecond},
		{0.9, 378 * time.Millisecond},
	}
	for _, c := range charges {
		m.Charge(c.w, c.d)
		legacy += c.w * c.d.Seconds()
	}
	if m.Joules() != legacy {
		t.Errorf("meter = %v, want bit-identical %v", m.Joules(), legacy)
	}
	m.Reset()
	if m.Joules() != 0 {
		t.Errorf("reset meter = %v, want 0", m.Joules())
	}
}

// TestCounterCommutes drives a Counter from many goroutines and checks
// the total is exactly the sum of independently rounded contributions —
// i.e. independent of interleaving.
func TestCounterCommutes(t *testing.T) {
	const workers = 8
	const perWorker = 1000
	contribution := func(i int) float64 { return 0.001*float64(i%7) + 1e-10 }

	var wantNJ int64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			wantNJ += int64(math.Round(contribution(i) * 1e9))
		}
	}

	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(contribution(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Joules(); got != float64(wantNJ)/1e9 {
		t.Errorf("counter = %v, want %v", got, float64(wantNJ)/1e9)
	}
}

func TestShardPowerModel(t *testing.T) {
	p := DefaultShardPower()
	if p.IdleW <= 0 || p.ActiveW <= p.IdleW {
		t.Fatalf("default shard power %+v: want 0 < IdleW < ActiveW", p)
	}
	if got := p.IdleJ(10 * time.Second); got != p.IdleW*10 {
		t.Errorf("IdleJ(10s) = %v, want %v", got, p.IdleW*10)
	}
	if got := p.ActiveJ(2 * time.Second); got != (p.ActiveW-p.IdleW)*2 {
		t.Errorf("ActiveJ(2s) = %v, want %v", got, (p.ActiveW-p.IdleW)*2)
	}
	custom := ShardPower{IdleW: 3}.WithDefaults()
	if custom.IdleW != 3 || custom.ActiveW != p.ActiveW {
		t.Errorf("WithDefaults kept %+v, want idle 3 active %v", custom, p.ActiveW)
	}
}

func TestLedgerSnapshotCrossFoots(t *testing.T) {
	var l Ledger
	l.Radio.Add(2.5)
	l.DeviceBase.Add(1.25)
	l.ShardIdle.Charge(10, time.Second)
	l.ShardActive.Charge(15, 2*time.Second)
	s := l.Snapshot()
	if s.ShardJ() != s.ShardIdleJ+s.ShardActiveJ {
		t.Errorf("ShardJ = %v, want %v", s.ShardJ(), s.ShardIdleJ+s.ShardActiveJ)
	}
	want := s.RadioJ + s.DeviceBaseJ + s.ShardIdleJ + s.ShardActiveJ
	if s.TotalJ() != want {
		t.Errorf("TotalJ = %v, want %v", s.TotalJ(), want)
	}
	if s.RadioJ != 2.5 || s.DeviceBaseJ != 1.25 || s.ShardIdleJ != 10 || s.ShardActiveJ != 30 {
		t.Errorf("snapshot = %+v", s)
	}
}

package backend

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pocketcloudlets/internal/faults"
)

func opts(disc Discipline, rate, offered float64, depth int) Options {
	return Options{
		Enabled: true, Seed: 7, Replicas: 3, ServiceRate: rate,
		QueueDepth: depth, Discipline: disc, Dist: DistExp,
		Offered: offered, CloneFactor: 2,
	}
}

// queries builds a deterministic batch of pricing queries spread over
// the model horizon.
type query struct {
	replica int
	at      time.Duration
	uid, qh uint64
	seq     uint64
	attempt int
}

func makeQueries(n int) []query {
	r := rand.New(rand.NewSource(42))
	qs := make([]query, n)
	for i := range qs {
		qs[i] = query{
			replica: r.Intn(3),
			at:      time.Duration(r.Int63n(int64(120 * time.Second))),
			uid:     r.Uint64() % 1000,
			qh:      r.Uint64(),
			seq:     uint64(r.Intn(20)),
			attempt: 1 + r.Intn(4),
		}
	}
	return qs
}

// TestPricePure is the determinism contract: the same query answers
// the same on a fresh model, in any order, and under concurrency —
// observers never perturb the simulated queues.
func TestPricePure(t *testing.T) {
	for _, disc := range []Discipline{FIFO, PS} {
		qs := makeQueries(400)

		// Reference: ascending model-time order on a fresh model.
		ref := NewModel(opts(disc, 20, 25, 32))
		want := make([]faults.Admission, len(qs))
		order := make([]int, len(qs))
		for i := range order {
			order[i] = i
		}
		for _, i := range order {
			q := qs[i]
			want[i] = ref.Price(q.replica, q.at, q.uid, q.qh, q.seq, q.attempt)
		}

		// Shuffled order on a fresh model.
		m := NewModel(opts(disc, 20, 25, 32))
		r := rand.New(rand.NewSource(9))
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			q := qs[i]
			if got := m.Price(q.replica, q.at, q.uid, q.qh, q.seq, q.attempt); got != want[i] {
				t.Fatalf("%v: query %d out-of-order mismatch: got %+v want %+v", disc, i, got, want[i])
			}
		}

		// Concurrent repeats against the same (already warmed) model.
		var wg sync.WaitGroup
		errs := make(chan string, len(qs))
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(qs); i += 8 {
					q := qs[i]
					if got := m.Price(q.replica, q.at, q.uid, q.qh, q.seq, q.attempt); got != want[i] {
						errs <- "concurrent mismatch"
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("%v: %s", disc, e)
		}
	}
}

// TestNoLoadNoWait: with no background load, requests pay their service
// time but never queue and are never rejected.
func TestNoLoadNoWait(t *testing.T) {
	for _, disc := range []Discipline{FIFO, PS} {
		m := NewModel(opts(disc, 20, 0, 4))
		for _, q := range makeQueries(200) {
			adm := m.Price(q.replica, q.at, q.uid, q.qh, q.seq, q.attempt)
			if adm.Rejected || adm.Wait != 0 {
				t.Fatalf("%v: unloaded backend queued/rejected: %+v", disc, adm)
			}
			if adm.Service <= 0 {
				t.Fatalf("%v: service time not drawn: %+v", disc, adm)
			}
		}
	}
}

// TestInfiniteRateIsZero: an infinitely fast server prices everything
// at exactly zero and admits everything — the byte-identity escape
// hatch the fleet equivalence tests lean on.
func TestInfiniteRateIsZero(t *testing.T) {
	for _, disc := range []Discipline{FIFO, PS} {
		m := NewModel(opts(disc, math.Inf(1), 50, 4))
		for _, q := range makeQueries(200) {
			if adm := m.Price(q.replica, q.at, q.uid, q.qh, q.seq, q.attempt); adm != (faults.Admission{}) {
				t.Fatalf("%v: infinite rate priced nonzero: %+v", disc, adm)
			}
		}
	}
}

// TestDisabledModelIsNil: inactive options build no model, and a nil
// model prices zero and records nothing.
func TestDisabledModelIsNil(t *testing.T) {
	if m := NewModel(Options{}); m != nil {
		t.Fatalf("disabled options built a model")
	}
	if m := NewModel(Options{Enabled: true}); m != nil {
		t.Fatalf("zero service rate built a model")
	}
	var m *Model
	if adm := m.Price(0, time.Second, 1, 2, 3, 1); adm != (faults.Admission{}) {
		t.Fatalf("nil model priced nonzero: %+v", adm)
	}
	m.Record([]faults.Arrival{{Replica: 0}})
	if s := m.Stats(); s != nil {
		t.Fatalf("nil model has stats: %v", s)
	}
}

// TestOverloadQueues: offered load past capacity grows FIFO waits with
// model time (unbounded queue), and a bounded queue caps the wait and
// rejects instead.
func TestOverloadQueues(t *testing.T) {
	unbounded := NewModel(opts(FIFO, 10, 40, 0)) // per-replica λ ≈ 26.7 vs μ = 10
	early := unbounded.Price(0, 2*time.Second, 1, 2, 1, 1)
	late := unbounded.Price(0, 100*time.Second, 1, 2, 1, 1)
	if late.Wait < 4*early.Wait || late.Wait < 10*time.Second {
		t.Fatalf("overloaded FIFO backlog did not grow: early %v late %v", early.Wait, late.Wait)
	}

	bounded := NewModel(opts(FIFO, 10, 40, 8))
	boundDur := 8 * (time.Second / 10) // QueueDepth × mean service
	rejected := 0
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 500 * time.Millisecond
		adm := bounded.Price(0, at, uint64(i), uint64(i)*3, 1, 1)
		if adm.Rejected {
			rejected++
			continue
		}
		if adm.Wait > boundDur+time.Millisecond {
			t.Fatalf("bounded FIFO wait %v exceeds bound %v", adm.Wait, boundDur)
		}
	}
	if rejected == 0 {
		t.Fatalf("overloaded bounded FIFO rejected nothing")
	}
}

// TestPSStretch: under PS, load stretches a request beyond its service
// time, and a multiprogramming bound rejects when the server is full.
func TestPSStretch(t *testing.T) {
	m := NewModel(opts(PS, 10, 30, 0)) // per-replica λ = 20 vs μ = 10: overload
	stretched := 0
	for i := 0; i < 100; i++ {
		at := 20*time.Second + time.Duration(i)*300*time.Millisecond
		adm := m.Price(1, at, uint64(i), uint64(i)*7, 1, 1)
		if adm.Rejected {
			t.Fatalf("unbounded PS rejected")
		}
		if adm.Wait > 0 {
			stretched++
		}
	}
	if stretched < 50 {
		t.Fatalf("overloaded PS barely stretched: %d/100", stretched)
	}

	bounded := NewModel(opts(PS, 10, 30, 2))
	rejected := 0
	for i := 0; i < 100; i++ {
		at := 20*time.Second + time.Duration(i)*300*time.Millisecond
		if bounded.Price(1, at, uint64(i), uint64(i)*7, 1, 1).Rejected {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatalf("bounded PS rejected nothing under overload")
	}
}

// TestRecordCrossFoot: the accounting invariant -check enforces, plus
// cancel-on-win work reclamation.
func TestRecordCrossFoot(t *testing.T) {
	ledger := []faults.Arrival{
		{Replica: 0, At: time.Second, Wait: 100 * time.Millisecond, Service: 200 * time.Millisecond, Status: faults.ArrivalServed},
		{Replica: 0, At: 2 * time.Second, Status: faults.ArrivalRejected},
		{Replica: 1, At: 3 * time.Second, Wait: 50 * time.Millisecond, Service: 400 * time.Millisecond,
			Status: faults.ArrivalAbandoned, Reclaimable: 300 * time.Millisecond},
	}

	burn := NewModel(opts(FIFO, 10, 5, 0))
	burn.Record(ledger)
	st := burn.Stats()
	if len(st) != 3 {
		t.Fatalf("want 3 replica stats, got %d", len(st))
	}
	for r, s := range st {
		if s.Arrivals != s.Served+s.Rejected+s.Abandoned {
			t.Fatalf("replica %d cross-foot: %+v", r, s)
		}
	}
	if st[0].Arrivals != 2 || st[0].Served != 1 || st[0].Rejected != 1 {
		t.Fatalf("replica 0 counts wrong: %+v", st[0])
	}
	if st[1].Abandoned != 1 || st[1].BusyNs != int64(400*time.Millisecond) ||
		st[1].AbandonedWorkNs != int64(400*time.Millisecond) || st[1].ReclaimedNs != 0 {
		t.Fatalf("fire-and-forget abandoned accounting wrong: %+v", st[1])
	}

	o := opts(FIFO, 10, 5, 0)
	o.CancelOnWin = true
	cancel := NewModel(o)
	cancel.Record(ledger)
	st = cancel.Stats()
	if st[1].BusyNs != int64(100*time.Millisecond) || st[1].ReclaimedNs != int64(300*time.Millisecond) ||
		st[1].AbandonedWorkNs != int64(100*time.Millisecond) {
		t.Fatalf("cancel-on-win abandoned accounting wrong: %+v", st[1])
	}
	if got := st[1].HorizonNs; got != int64(3*time.Second+150*time.Millisecond) {
		t.Fatalf("cancel-on-win horizon wrong: %d", got)
	}

	// Delta and derived metrics.
	d := st[0].Sub(ReplicaStats{})
	if d.Arrivals != st[0].Arrivals || d.HorizonNs != st[0].HorizonNs {
		t.Fatalf("Sub identity broken: %+v vs %+v", d, st[0])
	}
	if mw := st[0].MeanWait(); mw != 100*time.Millisecond {
		t.Fatalf("mean wait: %v", mw)
	}
	if p := st[0].P99Wait(); p < 100*time.Millisecond || p > 125*time.Millisecond {
		t.Fatalf("p99 wait outside bucket tolerance: %v", p)
	}
}

// TestWaitBuckets: bucket mapping is monotone and the upper bound
// covers the bucket.
func TestWaitBuckets(t *testing.T) {
	if waitBucket(0) != 0 || bucketUpper(0) != 0 {
		t.Fatalf("zero wait must land in bucket 0")
	}
	prev := -1
	for _, w := range []time.Duration{1, 10, time.Microsecond, time.Millisecond, time.Second, time.Minute, time.Hour} {
		b := waitBucket(w)
		if b <= prev {
			t.Fatalf("bucket not monotone at %v", w)
		}
		if up := bucketUpper(b); up < w {
			t.Fatalf("bucket upper %v below member %v", up, w)
		}
		prev = b
	}
}

// TestPSOverloadSaturates: an unbounded PS queue under sustained
// overload has genuinely diverging sojourn times; the tagged replay
// must saturate deterministically rather than walk the divergence
// forever.
func TestPSOverloadSaturates(t *testing.T) {
	o := opts(PS, 10, 30, 0) // per-replica lambda = 20, mu = 10, unbounded
	m1, m2 := NewModel(o), NewModel(o)
	at := 200 * time.Second
	done := make(chan faults.Admission, 1)
	go func() { done <- m1.Price(0, at, 9, 9, 9, 1) }()
	var adm faults.Admission
	select {
	case adm = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("overloaded unbounded PS price did not terminate")
	}
	if adm.Rejected || adm.Wait <= time.Second {
		t.Fatalf("saturated overload wait implausibly small: %+v", adm)
	}
	if again := m2.Price(0, at, 9, 9, 9, 1); again != adm {
		t.Fatalf("saturated price not deterministic: %+v vs %+v", again, adm)
	}
}

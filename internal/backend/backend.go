// Package backend models the cloud side of the miss path as a small
// cluster of replica servers with finite capacity — queues, not
// oracles. Each replica is an event-driven simulation of a single
// server fed by a seeded background arrival process representing the
// fleet's aggregate miss load: bounded FIFO or processor-sharing
// service, configurable service-time distributions, and per-replica
// utilization and queue-wait accounting. This is what makes the
// request-cloning congestion knee observable (PAPERS.md, the request
// cloning reproducibility report): cloning multiplies the offered load,
// and past the utilization knee the queues — not the radio — set the
// tail.
//
// # Determinism contract
//
// The fleet plans misses concurrently from many worker goroutines, and
// users' model clocks advance at different rates, so backend queries
// arrive in no particular order — yet fleet outcomes must stay
// byte-reproducible under -race. The subsystem therefore never lets a
// foreground request mutate the simulated queue it observes:
//
//   - Each replica's queue evolves under a deterministic *background*
//     process — seeded Poisson arrivals at the configured offered rate
//     (scaled by the clone factor, since every clone is one more
//     arrival somewhere), with service demands drawn from the
//     configured distribution. The queue state at model time t is a
//     pure function of (seed, replica, t).
//   - A priced dispatch is a *transparent observer*: Price simulates
//     the state at its arrival instant (checkpointed, so out-of-order
//     queries are cheap), reads its wait/rejection, and draws its own
//     service time from a pure hash of (seed, replica, uid, qh, seq,
//     attempt). Nothing it does perturbs what any other query sees.
//   - Accounting (arrivals, served, rejected, abandoned, busy time,
//     wait histograms) accumulates through commutative atomic adds of
//     deterministic per-plan values, so totals are exact and
//     order-independent.
//
// With the model disabled — or with an infinite service rate — every
// priced quantity is exactly zero and every dispatch is admitted, so
// plans, outcomes and reports are byte-identical to the pre-backend
// fleet. That identity is the refactor's safety rail (DESIGN.md,
// "Queued backends") and a scripts/check.sh smoke.
package backend

import (
	"fmt"
	"math"
	"time"

	"pocketcloudlets/internal/faults"
)

// Discipline selects how a replica's server shares itself among queued
// requests.
type Discipline uint8

const (
	// FIFO: one request in service at a time, the rest wait in arrival
	// order. The queue bound caps the backlog at QueueDepth mean
	// service times of unfinished work.
	FIFO Discipline = iota
	// PS: processor sharing — every admitted request progresses at rate
	// 1/n. The queue bound caps the multiprogramming level at
	// QueueDepth concurrent requests.
	PS
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case PS:
		return "ps"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// ParseDiscipline parses the cmd/loadtest / scenario spelling.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "", "fifo":
		return FIFO, nil
	case "ps":
		return PS, nil
	default:
		return 0, fmt.Errorf("backend: unknown discipline %q (want fifo or ps)", s)
	}
}

// Dist selects the service-time distribution.
type Dist uint8

const (
	// DistExp: exponential service times with mean 1/ServiceRate (the
	// M/M/1-family baseline of the PS-model literature).
	DistExp Dist = iota
	// DistFixed: deterministic service times of exactly 1/ServiceRate.
	DistFixed
)

// String implements fmt.Stringer.
func (d Dist) String() string {
	switch d {
	case DistExp:
		return "exp"
	case DistFixed:
		return "fixed"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// ParseDist parses the cmd/loadtest / scenario spelling.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "", "exp":
		return DistExp, nil
	case "fixed":
		return DistFixed, nil
	default:
		return 0, fmt.Errorf("backend: unknown service distribution %q (want exp or fixed)", s)
	}
}

// Options configure the modeled cloud backend. The zero value disables
// it entirely.
type Options struct {
	// Enabled turns the queued-backend model on. Off, the miss path is
	// byte-identical to the pre-backend fleet.
	Enabled bool
	// Seed drives the background arrival process and the per-request
	// service draws. Independent of the workload and fault seeds.
	Seed int64
	// Replicas is the number of modeled replica servers; the fleet sets
	// it from its own replica count. Minimum 1.
	Replicas int
	// ServiceRate is each replica's service capacity in requests per
	// second (the mean service time is its inverse). math.Inf(1) models
	// an infinitely fast server: every priced quantity is exactly zero,
	// which must reproduce the pre-backend fleet byte-for-byte. Zero or
	// negative disables the model.
	ServiceRate float64
	// QueueDepth bounds each replica's queue; zero means unbounded.
	// FIFO: the backlog may not exceed QueueDepth mean service times of
	// unfinished work. PS: at most QueueDepth requests share the server.
	// A dispatch over the bound is rejected — an immediate retryable
	// failure.
	QueueDepth int
	// Discipline selects FIFO or processor sharing.
	Discipline Discipline
	// Dist selects the service-time distribution.
	Dist Dist
	// Offered is the fleet-wide miss arrival rate in requests per
	// second *before* cloning — the intensity of the background load
	// each replica's queue simmers under. The per-replica background
	// rate is Offered × CloneFactor / Replicas. Zero means no
	// background load: requests still pay their service time but never
	// queue.
	Offered float64
	// CloneFactor scales the background load for request cloning (every
	// hedged miss is up to CloneFactor arrivals somewhere); the fleet
	// sets it from its hedge policy. Minimum 1.
	CloneFactor int
	// CancelOnWin reclaims a hedge loser's unexecuted work when the
	// winner's answer cancels it: only the executed slice is charged to
	// the replica's busy time, and the remainder is booked as
	// reclaimed. Off, abandoned requests burn their full service time
	// (fire-and-forget clones).
	CancelOnWin bool
}

// Active reports whether the model actually prices anything.
func (o Options) Active() bool { return o.Enabled && o.ServiceRate > 0 }

func (o Options) withDefaults() Options {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.CloneFactor < 1 {
		o.CloneFactor = 1
	}
	return o
}

// mix is the splitmix64 finalizer (the same bijective avalanche the
// fault hashes use).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rng is a splitmix64 stream — cheap, seedable, and checkpointable by
// copying one word, which is what lets the timeline resume from any
// checkpoint.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	return mix(r.s)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// exp returns a unit-mean exponential draw (strictly positive).
func (r *rng) exp() float64 { return -math.Log1p(-r.float()) }

// Model is the replicated backend. Safe for concurrent use: pricing is
// pure per the package contract, accounting is atomic.
type Model struct {
	opts Options
	// mean is the mean service time in seconds (0 for an infinite
	// rate); lambda the per-replica background arrival rate; bound the
	// FIFO backlog bound in seconds (0 = unbounded).
	mean   float64
	lambda float64
	bound  float64
	reps   []*replica
}

// NewModel builds the model, or returns nil when the options are
// inactive — a nil *Model is a valid "no backend" and prices nothing.
func NewModel(o Options) *Model {
	o = o.withDefaults()
	if !o.Active() {
		return nil
	}
	m := &Model{opts: o}
	if !math.IsInf(o.ServiceRate, 1) {
		m.mean = 1 / o.ServiceRate
	}
	if o.Offered > 0 {
		m.lambda = o.Offered * float64(o.CloneFactor) / float64(o.Replicas)
	}
	if o.QueueDepth > 0 {
		m.bound = float64(o.QueueDepth) * m.mean
	}
	m.reps = make([]*replica, o.Replicas)
	for r := range m.reps {
		m.reps[r] = newReplica(m, r)
	}
	return m
}

// Options returns the model's configuration (zero for a nil model).
func (m *Model) Options() Options {
	if m == nil {
		return Options{}
	}
	return m.opts
}

// CancelOnWin reports whether the model reclaims abandoned work; nil-safe.
func (m *Model) CancelOnWin() bool { return m != nil && m.opts.CancelOnWin }

// drawService is the pure per-request service draw: the same
// identifiers always cost the same service time, on any replica query
// order.
func (m *Model) drawService(replica int, uid, qh, seq uint64, attempt int) float64 {
	if m.mean == 0 || m.opts.Dist == DistFixed {
		return m.mean
	}
	x := mix(uint64(m.opts.Seed) ^ 0x5EBAC4E17E57D15E)
	x = mix(x ^ uint64(replica)*0xA24BAED4963EE407)
	x = mix(x ^ uid*0x9E3779B97F4A7C15)
	x = mix(x ^ qh)
	x = mix(x ^ seq*0xD1B54A32D192ED03)
	x = mix(x ^ uint64(attempt))
	u := float64(x>>11) / float64(1<<53)
	return -math.Log1p(-u) * m.mean
}

// Price implements faults.Pricer: the queueing experience a dispatch
// arriving at replica at model time at would have. Pure with respect
// to model state — concurrent and out-of-order calls always agree.
func (m *Model) Price(replica int, at time.Duration, uid, qh, seq uint64, attempt int) faults.Admission {
	if m == nil {
		return faults.Admission{}
	}
	if m.mean == 0 {
		// Infinitely fast server: every background demand is zero too, so
		// the queue can never hold work. Skip the timeline entirely — this
		// keeps the byte-identity configuration O(1) per dispatch.
		return faults.Admission{}
	}
	if replica < 0 || replica >= len(m.reps) {
		replica = 0
	}
	rp := m.reps[replica]
	t := float64(at) / 1e9
	if t < 0 {
		t = 0
	}
	svc := m.drawService(replica, uid, qh, seq, attempt)

	rp.mu.Lock()
	defer rp.mu.Unlock()
	st := rp.stateAt(t)
	switch m.opts.Discipline {
	case PS:
		if m.opts.QueueDepth > 0 && len(st.jobs) >= m.opts.QueueDepth {
			return faults.Admission{Rejected: true}
		}
		done := rp.tagged(st, t, svc)
		wait := done - t - svc
		if wait < 0 {
			wait = 0
		}
		return faults.Admission{Wait: seconds(wait), Service: seconds(svc)}
	default: // FIFO
		if m.bound > 0 && st.work >= m.bound {
			return faults.Admission{Rejected: true}
		}
		return faults.Admission{Wait: seconds(st.work), Service: seconds(svc)}
	}
}

// seconds converts a float second count to a model duration, saturating
// instead of overflowing.
func seconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	ns := s * 1e9
	if ns >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ns)
}

package backend

import (
	"math"
	"sort"
	"sync"
)

// The replica timeline. Each replica simulates its queue under the
// deterministic background process, event by event, in model time. The
// fleet's queries arrive in arbitrary order (users' model clocks are
// not synchronized), so the timeline keeps checkpoints — full copies
// of the simulation state every ckptEvery background arrivals — and
// answers a query by cloning the last checkpoint at or before the
// queried instant and replaying forward. Replay work per query is
// bounded by the checkpoint interval; checkpoints are append-only and
// grow with the model horizon actually explored.

// ckptEvery is the background-arrival interval between checkpoints.
const ckptEvery = 512

// completionEps is the remaining-work epsilon (seconds) below which a
// PS job is complete — one nanosecond, the model's output resolution.
// Float drain accumulates rounding, and the epsilon keeps job
// completion deterministic and terminating.
const completionEps = 1e-9

// state is one replica's simulated queue at instant t: every
// background event at or before t has been applied.
type state struct {
	t float64 // seconds of model time this state describes
	// work is the FIFO unfinished work (seconds) in the queue at t.
	work float64
	// jobs are the PS jobs' service-demand marks, sorted ascending. A
	// job's remaining demand is jobs[i] − off: draining every job by an
	// equal share is one add to off, and the next completion is always
	// jobs[0] — this is what keeps overloaded-queue replay linear in
	// events rather than quadratic in backlog.
	jobs []float64
	off  float64
	// events counts background arrivals consumed so far.
	events int64
	// nextAt/nextDemand are the next background arrival's instant and
	// service demand; r is the draw stream positioned after them.
	nextAt     float64
	nextDemand float64
	r          rng
}

// insertJob admits a job of the given remaining demand, keeping the
// marks sorted.
func (st *state) insertJob(demand float64) {
	mark := demand + st.off
	i := sort.SearchFloat64s(st.jobs, mark)
	st.jobs = append(st.jobs, 0)
	copy(st.jobs[i+1:], st.jobs[i:])
	st.jobs[i] = mark
}

// dropDone pops completed jobs off the front.
func (st *state) dropDone() {
	for len(st.jobs) > 0 && st.jobs[0] <= st.off+completionEps {
		st.jobs = st.jobs[1:]
	}
}

// copyFrom deep-copies src into st, reusing st's jobs capacity.
func (st *state) copyFrom(src *state) {
	jobs := append(st.jobs[:0], src.jobs...)
	*st = *src
	st.jobs = jobs
}

type replica struct {
	m  *Model
	mu sync.Mutex
	// cps are the checkpoints in event order; cps[0] is genesis (t=0,
	// empty queue, first arrival drawn).
	cps []state
	// scratch is the query working state; scratch2 the tagged-job clone
	// (both reused under mu so steady-state queries stay allocation-lean).
	scratch, scratch2 state

	acct acct
}

func newReplica(m *Model, idx int) *replica {
	rp := &replica{m: m}
	genesis := state{r: rng{s: mix(uint64(m.opts.Seed)^0xB0E57A7E_5EED_0001) ^ uint64(idx)*0x9FB21C651E98DF25}}
	genesis.nextAt = math.Inf(1)
	if m.lambda > 0 {
		genesis.nextAt = genesis.r.exp() / m.lambda
		genesis.nextDemand = m.drawBackgroundDemand(&genesis.r)
	}
	rp.cps = append(rp.cps, genesis)
	return rp
}

// drawBackgroundDemand draws one background job's service demand from
// the stream.
func (m *Model) drawBackgroundDemand(r *rng) float64 {
	switch {
	case m.mean == 0:
		r.next() // keep the stream layout stable across distributions
		return 0
	case m.opts.Dist == DistFixed:
		r.next()
		return m.mean
	default:
		return r.exp() * m.mean
	}
}

// stateAt returns the queue state at instant t in the replica's
// scratch buffer. Caller holds mu; the result is valid until the next
// stateAt/tagged call.
func (rp *replica) stateAt(t float64) *state {
	// Latest checkpoint at or before t. Checkpoint times are strictly
	// increasing, so binary search applies.
	lo, hi := 0, len(rp.cps)
	for lo < hi {
		mid := (lo + hi) / 2
		if rp.cps[mid].t <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cp := &rp.cps[lo-1]
	st := &rp.scratch
	st.copyFrom(cp)
	frontier := rp.cps[len(rp.cps)-1].events
	rp.advance(st, t, frontier)
	return st
}

// advance replays background events up to and including instant t,
// then drains the final partial interval so st describes t exactly.
// While the replay pushes past the checkpoint frontier it appends new
// checkpoints every ckptEvery arrivals.
func (rp *replica) advance(st *state, t float64, frontier int64) {
	switch rp.m.opts.Discipline {
	case PS:
		rp.advancePS(st, t, frontier)
	default:
		rp.advanceFIFO(st, t, frontier)
	}
}

// advanceFIFO is the scalar virtual-work recursion: between arrivals
// the server drains unfinished work at rate 1; an arrival over the
// backlog bound is dropped (the background load sheds too — the bound
// is the replica's, not the observer's).
func (rp *replica) advanceFIFO(st *state, t float64, frontier int64) {
	for st.nextAt <= t {
		if d := st.nextAt - st.t; st.work > d {
			st.work -= d
		} else {
			st.work = 0
		}
		st.t = st.nextAt
		if rp.m.bound <= 0 || st.work < rp.m.bound {
			st.work += st.nextDemand
		}
		rp.consumeArrival(st, frontier)
	}
	if d := t - st.t; st.work > d {
		st.work -= d
	} else {
		st.work = 0
	}
	st.t = t
}

// advancePS replays arrivals and completions: n admitted jobs each
// progress at rate 1/n; an arrival over the multiprogramming bound is
// dropped.
func (rp *replica) advancePS(st *state, t float64, frontier int64) {
	for {
		nc := math.Inf(1)
		if n := len(st.jobs); n > 0 {
			nc = st.t + (st.jobs[0]-st.off)*float64(n)
		}
		if nc <= st.nextAt && nc <= t {
			st.off += (nc - st.t) / float64(len(st.jobs))
			st.t = nc
			st.dropDone()
			continue
		}
		if st.nextAt <= t {
			if n := len(st.jobs); n > 0 {
				st.off += (st.nextAt - st.t) / float64(n)
			}
			st.t = st.nextAt
			st.dropDone()
			if rp.m.opts.QueueDepth <= 0 || len(st.jobs) < rp.m.opts.QueueDepth {
				st.insertJob(st.nextDemand)
			}
			rp.consumeArrival(st, frontier)
			continue
		}
		break
	}
	if n := len(st.jobs); n > 0 {
		st.off += (t - st.t) / float64(n)
	}
	st.t = t
	st.dropDone()
}

// consumeArrival books one background arrival as processed, draws the
// next one, and checkpoints at the interval while st is past the
// frontier.
func (rp *replica) consumeArrival(st *state, frontier int64) {
	st.events++
	st.nextAt += st.r.exp() / rp.m.lambda
	st.nextDemand = rp.m.drawBackgroundDemand(&st.r)
	if st.events > frontier && st.events%ckptEvery == 0 {
		cp := state{}
		cp.copyFrom(st)
		rp.cps = append(rp.cps, cp)
	}
}

// taggedMaxArrivals caps the tagged replay's forward walk. In an
// unbounded PS queue under sustained overload (arrival rate above the
// service rate) sojourn times genuinely diverge — the sharing level
// keeps growing, the tagged job's drain rate keeps shrinking — and the
// replay would walk that divergence one background event at a time,
// forever. Past the cap the job is declared complete at the clock
// reached: a deterministic saturation (the walk is a pure function of
// state) that reports "this wait is astronomical" without replaying
// it. Stable queues and bounded queues complete in a handful of events
// and never come near the cap.
const taggedMaxArrivals = 1 << 16

// tagged simulates a foreground job of demand svc arriving at t into
// state st (which describes t) and returns its completion instant.
// The tagged job shares the server like any other — it slows the
// background jobs in this throwaway replay — but the replay never
// escapes: st and the clone are scratch, so other queries are
// unperturbed.
func (rp *replica) tagged(st *state, t, svc float64) float64 {
	if svc <= completionEps {
		return t
	}
	cl := &rp.scratch2
	cl.copyFrom(st)
	rem := svc
	var arrivals int
	for {
		n := len(cl.jobs) + 1
		nc := math.Inf(1)
		if len(cl.jobs) > 0 {
			nc = cl.t + (cl.jobs[0]-cl.off)*float64(n)
		}
		tc := cl.t + rem*float64(n)
		switch {
		case nc <= tc && nc <= cl.nextAt:
			dt := nc - cl.t
			cl.off += dt / float64(n)
			rem -= dt / float64(n)
			cl.t = nc
			cl.dropDone()
		case tc <= cl.nextAt:
			return tc
		default:
			dt := cl.nextAt - cl.t
			cl.off += dt / float64(n)
			rem -= dt / float64(n)
			cl.t = cl.nextAt
			cl.dropDone()
			// The tagged job holds a slot: background admission sees it.
			if rp.m.opts.QueueDepth <= 0 || len(cl.jobs)+1 < rp.m.opts.QueueDepth {
				cl.insertJob(cl.nextDemand)
			}
			cl.events++
			cl.nextAt += cl.r.exp() / rp.m.lambda
			cl.nextDemand = rp.m.drawBackgroundDemand(&cl.r)
			if arrivals++; arrivals >= taggedMaxArrivals {
				return cl.t // saturated: sojourn is diverging (see taggedMaxArrivals)
			}
		}
		if rem <= completionEps {
			return cl.t
		}
	}
}

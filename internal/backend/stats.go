package backend

import (
	"math"
	"sync/atomic"
	"time"

	"pocketcloudlets/internal/faults"
)

// Accounting. The fleet books every plan's priced dispatches (the
// faults.Arrival ledger) into these counters after the plan replays.
// All updates are commutative atomic adds (and one atomic max) of
// deterministic per-plan values, so the totals are exact and identical
// regardless of goroutine interleaving — the same trick the fleet's
// own telemetry uses.

// histBuckets is the queue-wait histogram resolution: quarter-octave
// log2 buckets over nanoseconds (≲19% relative error on the p99),
// bucket 0 holding exact-zero waits.
const histBuckets = 256

// acct is one replica's counter block.
type acct struct {
	arrivals  atomic.Int64
	served    atomic.Int64
	rejected  atomic.Int64
	abandoned atomic.Int64
	// busyNs is the service time actually charged to the server;
	// abandonedWorkNs the slice of it charged to requests nobody
	// consumed; reclaimedNs the service time cancel-on-win returned.
	busyNs          atomic.Int64
	abandonedWorkNs atomic.Int64
	reclaimedNs     atomic.Int64
	// waitSumNs sums queue waits over non-rejected arrivals; the
	// histogram holds their distribution.
	waitSumNs atomic.Int64
	hist      [histBuckets]atomic.Int64
	// horizonNs is the latest model instant any booked dispatch touched
	// — the elapsed-capacity denominator of utilization.
	horizonNs atomic.Int64
}

func (a *acct) recordWait(w time.Duration) {
	a.waitSumNs.Add(int64(w))
	a.hist[waitBucket(w)].Add(1)
}

func (a *acct) raiseHorizon(ns int64) {
	for {
		cur := a.horizonNs.Load()
		if ns <= cur || a.horizonNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// waitBucket maps a wait to its histogram bucket.
func waitBucket(w time.Duration) int {
	if w <= 0 {
		return 0
	}
	b := 1 + int(math.Log2(float64(w))*4)
	if b < 1 {
		b = 1
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound (ns) of a histogram bucket.
func bucketUpper(b int) time.Duration {
	if b <= 0 {
		return 0
	}
	return time.Duration(math.Ceil(math.Exp2(float64(b) / 4)))
}

// Record books one plan's priced dispatch ledger. Rejected arrivals
// consume no backend time; served ones charge their service; abandoned
// ones charge their executed slice — plus, without cancel-on-win, the
// never-consumed remainder.
func (m *Model) Record(arrivals []faults.Arrival) {
	if m == nil {
		return
	}
	for _, ar := range arrivals {
		idx := ar.Replica
		if idx < 0 || idx >= len(m.reps) {
			idx = 0
		}
		a := &m.reps[idx].acct
		a.arrivals.Add(1)
		end := ar.At
		switch ar.Status {
		case faults.ArrivalRejected:
			a.rejected.Add(1)
		case faults.ArrivalAbandoned:
			a.abandoned.Add(1)
			a.recordWait(ar.Wait)
			end += ar.Wait + ar.Service
			executed := ar.Service - ar.Reclaimable
			if executed < 0 {
				executed = 0
			}
			if m.opts.CancelOnWin {
				a.busyNs.Add(int64(executed))
				a.abandonedWorkNs.Add(int64(executed))
				a.reclaimedNs.Add(int64(ar.Reclaimable))
				end -= ar.Reclaimable
			} else {
				a.busyNs.Add(int64(ar.Service))
				a.abandonedWorkNs.Add(int64(ar.Service))
			}
		default: // served
			a.served.Add(1)
			a.recordWait(ar.Wait)
			a.busyNs.Add(int64(ar.Service))
			end += ar.Wait + ar.Service
		}
		a.raiseHorizon(int64(end))
	}
}

// ReplicaStats is one replica's accounting snapshot. The invariant the
// load tester cross-foots: Arrivals == Served + Rejected + Abandoned.
type ReplicaStats struct {
	Arrivals, Served, Rejected, Abandoned int64
	// BusyNs is service time charged to the server; AbandonedWorkNs the
	// part charged to canceled requests; ReclaimedNs the service time
	// cancel-on-win returned instead of burning.
	BusyNs, AbandonedWorkNs, ReclaimedNs int64
	// WaitSumNs sums queue waits over non-rejected arrivals; Hist is
	// their quarter-octave log2 distribution (bucket 0 = zero wait).
	WaitSumNs int64
	Hist      [histBuckets]int64
	// HorizonNs is the latest model instant any dispatch touched.
	HorizonNs int64
}

// Sub returns the delta s − prev (horizon keeps the later absolute
// value; it is a watermark, not a counter).
func (s ReplicaStats) Sub(prev ReplicaStats) ReplicaStats {
	d := ReplicaStats{
		Arrivals:        s.Arrivals - prev.Arrivals,
		Served:          s.Served - prev.Served,
		Rejected:        s.Rejected - prev.Rejected,
		Abandoned:       s.Abandoned - prev.Abandoned,
		BusyNs:          s.BusyNs - prev.BusyNs,
		AbandonedWorkNs: s.AbandonedWorkNs - prev.AbandonedWorkNs,
		ReclaimedNs:     s.ReclaimedNs - prev.ReclaimedNs,
		WaitSumNs:       s.WaitSumNs - prev.WaitSumNs,
		HorizonNs:       s.HorizonNs,
	}
	for i := range s.Hist {
		d.Hist[i] = s.Hist[i] - prev.Hist[i]
	}
	return d
}

// Utilization is charged busy time over the model horizon — above 1.0
// the replica was asked for more work than time passed (overload).
func (s ReplicaStats) Utilization() float64 {
	if s.HorizonNs <= 0 {
		return 0
	}
	return float64(s.BusyNs) / float64(s.HorizonNs)
}

// MeanWait is the mean queue wait over non-rejected arrivals.
func (s ReplicaStats) MeanWait() time.Duration {
	n := s.Served + s.Abandoned
	if n == 0 {
		return 0
	}
	return time.Duration(s.WaitSumNs / n)
}

// P99Wait is the 99th-percentile queue wait from the histogram (an
// upper bound at the bucket resolution).
func (s ReplicaStats) P99Wait() time.Duration { return s.QuantileWait(0.99) }

// QuantileWait returns the q-quantile queue wait from the histogram.
func (s ReplicaStats) QuantileWait(q float64) time.Duration {
	var total int64
	for _, c := range s.Hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range s.Hist {
		cum += c
		if cum >= rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// AbandonedWorkFraction is the share of charged busy time spent on
// requests nobody consumed.
func (s ReplicaStats) AbandonedWorkFraction() float64 {
	if s.BusyNs <= 0 {
		return 0
	}
	return float64(s.AbandonedWorkNs) / float64(s.BusyNs)
}

// Stats snapshots every replica's accounting; nil for a nil model.
func (m *Model) Stats() []ReplicaStats {
	if m == nil {
		return nil
	}
	out := make([]ReplicaStats, len(m.reps))
	for i, rp := range m.reps {
		a := &rp.acct
		s := &out[i]
		s.Arrivals = a.arrivals.Load()
		s.Served = a.served.Load()
		s.Rejected = a.rejected.Load()
		s.Abandoned = a.abandoned.Load()
		s.BusyNs = a.busyNs.Load()
		s.AbandonedWorkNs = a.abandonedWorkNs.Load()
		s.ReclaimedNs = a.reclaimedNs.Load()
		s.WaitSumNs = a.waitSumNs.Load()
		s.HorizonNs = a.horizonNs.Load()
		for b := range a.hist {
			s.Hist[b] = a.hist[b].Load()
		}
	}
	return out
}

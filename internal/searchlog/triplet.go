package searchlog

import "sort"

// Triplet is one row of the paper's Table 3: a (query, search result)
// pair and the number of log entries in which that result was clicked
// after that query.
type Triplet struct {
	Pair   PairID
	Volume int64
}

// TripletTable is the Table 3 structure: triplets sorted by descending
// volume (ties broken by ascending PairID for determinism).
type TripletTable struct {
	Triplets    []Triplet
	TotalVolume int64
}

// ExtractTriplets aggregates a log into the sorted triplet table.
func ExtractTriplets(entries []Entry) TripletTable {
	counts := make(map[PairID]int64)
	for _, e := range entries {
		counts[e.Pair]++
	}
	t := TripletTable{Triplets: make([]Triplet, 0, len(counts))}
	for p, v := range counts {
		t.Triplets = append(t.Triplets, Triplet{Pair: p, Volume: v})
		t.TotalVolume += v
	}
	sort.Slice(t.Triplets, func(i, j int) bool {
		a, b := t.Triplets[i], t.Triplets[j]
		if a.Volume != b.Volume {
			return a.Volume > b.Volume
		}
		return a.Pair < b.Pair
	})
	return t
}

// NormalizedVolume returns the triplet's volume divided by the table's
// total volume — the quantity the cache saturation threshold of
// Section 5.1 compares against.
func (t TripletTable) NormalizedVolume(i int) float64 {
	if t.TotalVolume == 0 {
		return 0
	}
	return float64(t.Triplets[i].Volume) / float64(t.TotalVolume)
}

// CumulativeShare returns the fraction of total volume covered by the
// first n triplets — the y-axis of the paper's Figure 7.
func (t TripletTable) CumulativeShare(n int) float64 {
	if t.TotalVolume == 0 {
		return 0
	}
	if n > len(t.Triplets) {
		n = len(t.Triplets)
	}
	var sum int64
	for i := 0; i < n; i++ {
		sum += t.Triplets[i].Volume
	}
	return float64(sum) / float64(t.TotalVolume)
}

// RankingScores computes the per-query normalized ranking score of each
// triplet in the table's prefix of length n: a triplet's volume divided
// by the total volume of all triplets (in the prefix) that share its
// query. This is the score generation step of Section 5.1 — for query
// "michael jackson" with results at volumes 10^6 and 9*10^5, the scores
// are 0.53 and 0.47.
func (t TripletTable) RankingScores(meta PairMeta, n int) map[PairID]float64 {
	if n > len(t.Triplets) {
		n = len(t.Triplets)
	}
	perQuery := make(map[QueryID]int64)
	for i := 0; i < n; i++ {
		tr := t.Triplets[i]
		perQuery[meta.QueryOf(tr.Pair)] += tr.Volume
	}
	scores := make(map[PairID]float64, n)
	for i := 0; i < n; i++ {
		tr := t.Triplets[i]
		q := meta.QueryOf(tr.Pair)
		if tot := perQuery[q]; tot > 0 {
			scores[tr.Pair] = float64(tr.Volume) / float64(tot)
		}
	}
	return scores
}

package searchlog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// This file implements a plain-text interchange format for search
// logs, used by cmd/tracegen and cmd/logstats. Each line holds one
// entry as tab-separated fields:
//
//	at_ms <TAB> user <TAB> device <TAB> query <TAB> clicked_url
//
// preceded by a single header line recording the window length.

// PairResolver maps the string form of an entry back to its pair
// identifier. internal/engine's Universe implements it.
type PairResolver interface {
	ResolvePair(query, url string) (PairID, bool)
}

// Write serializes the log using meta to materialize strings.
func Write(w io.Writer, log Log, meta PairMeta) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# pocketcloudlets-searchlog window_ms=%d\n", log.Window.Milliseconds()); err != nil {
		return err
	}
	for _, e := range log.Entries {
		q := meta.QueryText(meta.QueryOf(e.Pair))
		u := meta.ResultURL(meta.ResultOf(e.Pair))
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%s\t%s\n",
			e.At.Milliseconds(), e.User, e.Device, q, u); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a log written by Write, resolving string pairs back to
// identifiers. Lines whose pair cannot be resolved produce an error:
// a log must be read against the universe that produced it.
func Read(r io.Reader, res PairResolver) (Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var log Log
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if i := strings.Index(line, "window_ms="); i >= 0 {
				ms, err := strconv.ParseInt(strings.TrimSpace(line[i+len("window_ms="):]), 10, 64)
				if err != nil {
					return Log{}, fmt.Errorf("searchlog: line %d: bad window: %v", lineNo, err)
				}
				log.Window = time.Duration(ms) * time.Millisecond
			}
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			return Log{}, fmt.Errorf("searchlog: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		atMs, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return Log{}, fmt.Errorf("searchlog: line %d: bad time: %v", lineNo, err)
		}
		user, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return Log{}, fmt.Errorf("searchlog: line %d: bad user: %v", lineNo, err)
		}
		dev, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			return Log{}, fmt.Errorf("searchlog: line %d: bad device: %v", lineNo, err)
		}
		pair, ok := res.ResolvePair(fields[3], fields[4])
		if !ok {
			return Log{}, fmt.Errorf("searchlog: line %d: unresolvable pair (%q, %q)", lineNo, fields[3], fields[4])
		}
		log.Entries = append(log.Entries, Entry{
			At:     time.Duration(atMs) * time.Millisecond,
			User:   UserID(user),
			Device: DeviceClass(dev),
			Pair:   pair,
		})
	}
	if err := sc.Err(); err != nil {
		return Log{}, err
	}
	return log, nil
}

package searchlog_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/searchlog"
)

func testUniverse(t testing.TB) *engine.Universe {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:       960,
		NonNavPairs:    5000,
		NonNavSegments: []engine.Segment{{Queries: 500, ResultsPerQuery: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func entriesFromPairs(pairs []searchlog.PairID) []searchlog.Entry {
	es := make([]searchlog.Entry, len(pairs))
	for i, p := range pairs {
		es[i] = searchlog.Entry{
			At:     time.Duration(i) * time.Minute,
			User:   searchlog.UserID(i % 3),
			Pair:   p,
			Device: searchlog.DeviceClass(i % 2),
		}
	}
	return es
}

func TestExtractTripletsSortedByVolume(t *testing.T) {
	// Pair 5 appears 3 times, pair 2 twice, pair 9 once.
	entries := entriesFromPairs([]searchlog.PairID{5, 2, 5, 9, 2, 5})
	tbl := searchlog.ExtractTriplets(entries)
	if tbl.TotalVolume != 6 {
		t.Errorf("total volume = %d, want 6", tbl.TotalVolume)
	}
	if len(tbl.Triplets) != 3 {
		t.Fatalf("triplet count = %d, want 3", len(tbl.Triplets))
	}
	want := []searchlog.Triplet{{5, 3}, {2, 2}, {9, 1}}
	for i, w := range want {
		if tbl.Triplets[i] != w {
			t.Errorf("triplet[%d] = %+v, want %+v", i, tbl.Triplets[i], w)
		}
	}
}

func TestExtractTripletsTieBreakDeterministic(t *testing.T) {
	entries := entriesFromPairs([]searchlog.PairID{7, 3, 3, 7})
	tbl := searchlog.ExtractTriplets(entries)
	if tbl.Triplets[0].Pair != 3 || tbl.Triplets[1].Pair != 7 {
		t.Errorf("equal volumes should order by pair ID: %+v", tbl.Triplets)
	}
}

func TestCumulativeShare(t *testing.T) {
	entries := entriesFromPairs([]searchlog.PairID{1, 1, 1, 2, 2, 3})
	tbl := searchlog.ExtractTriplets(entries)
	checks := []struct {
		n    int
		want float64
	}{{0, 0}, {1, 0.5}, {2, 5.0 / 6}, {3, 1}, {99, 1}}
	for _, c := range checks {
		if got := tbl.CumulativeShare(c.n); got != c.want {
			t.Errorf("CumulativeShare(%d) = %g, want %g", c.n, got, c.want)
		}
	}
}

func TestNormalizedVolume(t *testing.T) {
	entries := entriesFromPairs([]searchlog.PairID{1, 1, 2, 2, 2})
	tbl := searchlog.ExtractTriplets(entries)
	if got := tbl.NormalizedVolume(0); got != 0.6 {
		t.Errorf("NormalizedVolume(0) = %g, want 0.6", got)
	}
	empty := searchlog.ExtractTriplets(nil)
	if len(empty.Triplets) != 0 || empty.TotalVolume != 0 {
		t.Error("empty log should produce empty table")
	}
}

// TestRankingScores reproduces the paper's worked example structure:
// two results under one query score volume/totalVolumeOfQuery.
func TestRankingScores(t *testing.T) {
	u := testUniverse(t)
	// Head non-nav pairs 0 and 1 share a query.
	p0, p1 := u.NonNavPair(0), u.NonNavPair(1)
	var pairs []searchlog.PairID
	for i := 0; i < 10; i++ { // volume 10 for p0
		pairs = append(pairs, p0)
	}
	for i := 0; i < 9; i++ { // volume 9 for p1
		pairs = append(pairs, p1)
	}
	tbl := searchlog.ExtractTriplets(entriesFromPairs(pairs))
	scores := tbl.RankingScores(u, len(tbl.Triplets))
	if got := scores[p0]; got < 0.52 || got > 0.54 {
		t.Errorf("score(p0) = %g, want ~10/19 = 0.526", got)
	}
	if got := scores[p1]; got < 0.46 || got > 0.48 {
		t.Errorf("score(p1) = %g, want ~9/19 = 0.474", got)
	}
	// A single-result query scores 1.
	solo := u.NavPair(0)
	tbl2 := searchlog.ExtractTriplets(entriesFromPairs([]searchlog.PairID{solo, solo}))
	if got := tbl2.RankingScores(u, 1)[solo]; got != 1 {
		t.Errorf("single-result query score = %g, want 1", got)
	}
}

func TestLogIORoundTrip(t *testing.T) {
	u := testUniverse(t)
	log := searchlog.Log{
		Window: 30 * 24 * time.Hour,
		Entries: entriesFromPairs([]searchlog.PairID{
			u.NavPair(0), u.NavPair(1), u.NonNavPair(0), u.NonNavPair(999),
		}),
	}
	var buf bytes.Buffer
	if err := searchlog.Write(&buf, log, u); err != nil {
		t.Fatal(err)
	}
	got, err := searchlog.Read(&buf, u)
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != log.Window {
		t.Errorf("window = %v, want %v", got.Window, log.Window)
	}
	if len(got.Entries) != len(log.Entries) {
		t.Fatalf("entry count = %d, want %d", len(got.Entries), len(log.Entries))
	}
	for i := range log.Entries {
		if got.Entries[i] != log.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got.Entries[i], log.Entries[i])
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	u := testUniverse(t)
	cases := []string{
		"1\t2\t0\tsite0",                            // too few fields
		"x\t2\t0\tsite0\twww.site0.com/",            // bad time
		"1\tx\t0\tsite0\twww.site0.com/",            // bad user
		"1\t2\tx\tsite0\twww.site0.com/",            // bad device
		"1\t2\t0\tnot a query\twww.site0.com/",      // unresolvable
		"# pocketcloudlets-searchlog window_ms=abc", // bad header
	}
	for _, c := range cases {
		if _, err := searchlog.Read(strings.NewReader(c), u); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
}

func TestDeviceClassString(t *testing.T) {
	if searchlog.Smartphone.String() != "smartphone" ||
		searchlog.Featurephone.String() != "featurephone" {
		t.Error("DeviceClass.String mismatch")
	}
	if searchlog.DeviceClass(7).String() == "" {
		t.Error("unknown device class should stringify")
	}
}

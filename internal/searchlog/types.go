// Package searchlog defines the mobile search log model of Section 4
// of the Pocket Cloudlets paper: timestamped per-user records of a
// submitted query string and the search result clicked in response,
// plus the (query, search result, volume) triplet extraction of
// Section 5.1 (Table 3) that drives cache content generation.
//
// To keep month-scale logs of millions of entries cheap, entries carry
// compact numeric identifiers into a query/result universe (implemented
// by internal/engine) rather than strings; the PairMeta interface
// supplies the string forms and metadata when needed.
package searchlog

import (
	"fmt"
	"time"
)

// PairID identifies one (query, clicked search result) pair in the
// universe. A pair is exactly the unit the paper's Table 3 ranks by
// volume and the unit the PocketSearch cache stores.
type PairID uint32

// QueryID identifies a distinct query string.
type QueryID uint32

// ResultID identifies a distinct search result (a web address). Several
// queries may share a result: the paper found only ~60% of cached
// search results are unique because users reach popular pages through
// misspellings and shortcuts.
type ResultID uint32

// UserID identifies an anonymized mobile user.
type UserID uint32

// DeviceClass distinguishes the two device populations the paper
// analyzes separately in Figure 4.
type DeviceClass uint8

const (
	// Smartphone is a high-end device with a capable browser.
	Smartphone DeviceClass = iota
	// Featurephone is a low-end device with a limited browser; its
	// users' queries are more concentrated.
	Featurephone
)

// String implements fmt.Stringer.
func (d DeviceClass) String() string {
	switch d {
	case Smartphone:
		return "smartphone"
	case Featurephone:
		return "featurephone"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(d))
	}
}

// Entry is one search log record: at time At (offset from the start of
// the log window) user User submitted the query of pair Pair and
// clicked its result.
type Entry struct {
	At     time.Duration
	User   UserID
	Pair   PairID
	Device DeviceClass
}

// Log is a window of search log entries, ordered by time.
type Log struct {
	// Window is the length of the collection window (e.g. one month).
	Window time.Duration
	// Entries are the records, in non-decreasing At order.
	Entries []Entry
}

// PairMeta resolves pair identifiers to their structure and string
// forms. internal/engine's Universe is the canonical implementation.
type PairMeta interface {
	// NumPairs reports the size of the pair universe.
	NumPairs() int
	// QueryOf returns the query of a pair.
	QueryOf(PairID) QueryID
	// ResultOf returns the clicked result of a pair.
	ResultOf(PairID) ResultID
	// Navigational reports whether the pair's query string is a
	// substring of its clicked URL (the paper's classifier).
	Navigational(PairID) bool
	// QueryText returns the query string.
	QueryText(QueryID) string
	// ResultURL returns the result's web address.
	ResultURL(ResultID) string
}

package hashtable

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero slots should fail")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative slots should fail")
	}
	if tbl, err := New(2); err != nil || tbl.SlotsPerEntry() != 2 {
		t.Errorf("New(2) = %v, %v", tbl, err)
	}
}

func TestPutLookupOrdering(t *testing.T) {
	tbl := MustNew(2)
	tbl.Put(100, SearchRef{ResultHash: 1, Score: 0.3})
	tbl.Put(100, SearchRef{ResultHash: 2, Score: 0.7})
	tbl.Put(100, SearchRef{ResultHash: 3, Score: 0.5})
	refs := tbl.Lookup(100)
	if len(refs) != 3 {
		t.Fatalf("got %d refs, want 3", len(refs))
	}
	if refs[0].ResultHash != 2 || refs[1].ResultHash != 3 || refs[2].ResultHash != 1 {
		t.Errorf("lookup order wrong: %+v", refs)
	}
	if tbl.Lookup(999) != nil {
		t.Error("missing query should return nil")
	}
}

func TestChainingBeyondSlots(t *testing.T) {
	tbl := MustNew(2)
	for i := 0; i < 5; i++ {
		tbl.Put(7, SearchRef{ResultHash: uint64(i), Score: float64(i)})
	}
	// 5 refs at 2 slots per entry -> 3 entries for 1 query.
	if tbl.NumQueries() != 1 || tbl.NumEntries() != 3 || tbl.NumRefs() != 5 {
		t.Errorf("queries=%d entries=%d refs=%d, want 1/3/5",
			tbl.NumQueries(), tbl.NumEntries(), tbl.NumRefs())
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	tbl := MustNew(2)
	tbl.Put(1, SearchRef{ResultHash: 9, Score: 0.4})
	tbl.Put(1, SearchRef{ResultHash: 9, Score: 0.9})
	if tbl.NumRefs() != 1 {
		t.Errorf("refs = %d, want 1 (update in place)", tbl.NumRefs())
	}
	if s, ok := tbl.Score(1, 9); !ok || s != 0.9 {
		t.Errorf("score = %g, %v, want 0.9", s, ok)
	}
}

func TestSetScore(t *testing.T) {
	tbl := MustNew(2)
	tbl.Put(1, SearchRef{ResultHash: 9, Score: 0.4})
	if !tbl.SetScore(1, 9, 0.6) {
		t.Error("SetScore on existing pair failed")
	}
	if s, _ := tbl.Score(1, 9); s != 0.6 {
		t.Errorf("score = %g, want 0.6", s)
	}
	if tbl.SetScore(1, 8, 0.5) || tbl.SetScore(2, 9, 0.5) {
		t.Error("SetScore on missing pair should return false")
	}
}

func TestAccessedFlags(t *testing.T) {
	tbl := MustNew(2)
	tbl.Put(1, SearchRef{ResultHash: 10, Score: 0.5})
	tbl.Put(1, SearchRef{ResultHash: 11, Score: 0.5})
	if tbl.Accessed(1, 10) {
		t.Error("fresh pair should not be accessed")
	}
	if !tbl.MarkAccessed(1, 10) {
		t.Error("MarkAccessed failed")
	}
	if !tbl.Accessed(1, 10) || tbl.Accessed(1, 11) {
		t.Error("accessed flag leaked to wrong slot")
	}
	if tbl.MarkAccessed(2, 10) {
		t.Error("MarkAccessed on missing pair should fail")
	}
}

func TestRemove(t *testing.T) {
	tbl := MustNew(2)
	tbl.Put(1, SearchRef{ResultHash: 10, Score: 0.5})
	tbl.Put(1, SearchRef{ResultHash: 11, Score: 0.4})
	tbl.Put(1, SearchRef{ResultHash: 12, Score: 0.3})
	tbl.MarkAccessed(1, 11)
	if !tbl.Remove(1, 10) {
		t.Fatal("Remove failed")
	}
	// Flag for 11 must survive slot compaction.
	if !tbl.Accessed(1, 11) {
		t.Error("accessed flag lost after compaction")
	}
	if tbl.NumRefs() != 2 {
		t.Errorf("refs = %d, want 2", tbl.NumRefs())
	}
	tbl.Remove(1, 11)
	tbl.Remove(1, 12)
	if tbl.Contains(1) {
		t.Error("query should vanish when last ref removed")
	}
	if tbl.Remove(1, 12) {
		t.Error("Remove on missing pair should fail")
	}
}

func TestPairsDeterministic(t *testing.T) {
	build := func() *Table {
		tbl := MustNew(2)
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 200; i++ {
			tbl.Put(uint64(r.Intn(50)), SearchRef{ResultHash: uint64(r.Intn(300)), Score: r.Float64()})
		}
		return tbl
	}
	a, b := build().Pairs(), build().Pairs()
	if len(a) != len(b) {
		t.Fatal("pair counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFootprintModel(t *testing.T) {
	// The modeled layout: 48 bytes per two-slot entry (the paper's
	// ~200 KB for a ~4000-entry cache implies ~50 B/entry).
	if EntryBytes(2) != 48 {
		t.Errorf("EntryBytes(2) = %d, want 48", EntryBytes(2))
	}
	tbl := MustNew(2)
	for q := 0; q < 4200; q++ {
		tbl.Put(uint64(q), SearchRef{ResultHash: uint64(q), Score: 1})
	}
	// ~4200 entries at 48 B each: ~200 KB, the paper's DRAM
	// footprint at the cache saturation point.
	if got := tbl.FootprintBytes(); got != 4200*48 {
		t.Errorf("footprint = %d, want %d", got, 4200*48)
	}
}

// TestTwoSlotsOptimalForPaperMix verifies the Figure 11 claim on a
// result-count mix like the cached head's: many 1-2 result queries and
// a band of long-click-list queries make k=2 the footprint minimum.
func TestTwoSlotsOptimalForPaperMix(t *testing.T) {
	counts := map[int]int{1: 2200, 2: 1700, 3: 400, 4: 150, 6: 50}
	foot := func(k int) int64 {
		tbl := MustNew(k)
		q := uint64(0)
		for rc, n := range counts {
			for i := 0; i < n; i++ {
				for r := 0; r < rc; r++ {
					tbl.Put(q, SearchRef{ResultHash: uint64(r), Score: float64(rc - r)})
				}
				q++
			}
		}
		return tbl.FootprintBytes()
	}
	f1, f2, f3, f4 := foot(1), foot(2), foot(3), foot(4)
	if !(f2 < f1 && f2 < f3 && f3 < f4) {
		t.Errorf("footprints: k1=%d k2=%d k3=%d k4=%d; want minimum at k=2", f1, f2, f3, f4)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tbl := MustNew(2)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		q, res := uint64(r.Intn(100)), uint64(r.Intn(1000))
		tbl.Put(q, SearchRef{ResultHash: res, Score: r.Float64()})
		if r.Intn(3) == 0 {
			tbl.MarkAccessed(q, res)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tbl.Pairs(), got.Pairs()
	if len(a) != len(b) {
		t.Fatalf("pair count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	tbl := MustNew(2)
	tbl.Put(1, SearchRef{ResultHash: 2, Score: 0.5})
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 8, 15, len(raw) - 1} {
		if _, err := Decode(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("Decode of %d-byte prefix should fail", n)
		}
	}
}

func TestPutLookupProperty(t *testing.T) {
	f := func(ops []struct {
		Q, R  uint16
		Score float64
	}) bool {
		tbl := MustNew(2)
		want := map[[2]uint64]float64{}
		for _, op := range ops {
			q, r := uint64(op.Q%20), uint64(op.R%50)
			tbl.Put(q, SearchRef{ResultHash: r, Score: op.Score})
			want[[2]uint64{q, r}] = op.Score
		}
		if tbl.NumRefs() != len(want) {
			return false
		}
		for k, s := range want {
			got, ok := tbl.Score(k[0], k[1])
			if !ok || got != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl := MustNew(2)
	for q := 0; q < 10000; q++ {
		tbl.Put(uint64(q)*2654435761, SearchRef{ResultHash: uint64(q), Score: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(uint64(i%10000) * 2654435761)
	}
}

func BenchmarkPut(b *testing.B) {
	tbl := MustNew(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Put(uint64(i)*2654435761, SearchRef{ResultHash: uint64(i), Score: 1})
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	tbl := MustNew(2)
	for q := 0; q < 5000; q++ {
		tbl.Put(uint64(q)*2654435761, SearchRef{ResultHash: uint64(q), Score: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tbl.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

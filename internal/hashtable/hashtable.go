// Package hashtable implements the DRAM query hash table of Section
// 5.2.1 of the Pocket Cloudlets paper (Figure 10): the in-memory index
// that links query hashes to search results stored in the flash
// database.
//
// Every entry corresponds to exactly one query and holds a fixed number
// of search-result slots (two in the paper's design — the
// footprint-optimal choice explored in Figure 11), each a pair of
// (web-address hash, ranking score), plus a 64-bit flags word. Queries
// with more results than slots chain additional entries, which the
// paper creates "by properly setting the second argument of the hash
// function"; here the chain is an ordered slice per query hash.
package hashtable

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// SearchRef is one search-result slot: the hash of the result's web
// address (which doubles as the database key) and its ranking score.
type SearchRef struct {
	ResultHash uint64
	Score      float64
}

// entry is one hash-table entry: up to slotsPerEntry refs plus flags.
type entry struct {
	refs  []SearchRef
	flags uint64
}

// Flag bits: bit i set means the user has accessed slot i of the entry.
// The paper reserves the remaining bits for future use.
const accessedBit = 1

// Table is the query hash table.
type Table struct {
	slots   int
	entries map[uint64][]entry
	// refCount tracks the total number of stored refs for O(1) stats.
	refCount int
}

// New creates a table with the given number of search-result slots per
// entry. The paper's design uses two; Figure 11 sweeps 1..6.
func New(slotsPerEntry int) (*Table, error) {
	if slotsPerEntry < 1 {
		return nil, fmt.Errorf("hashtable: slots per entry must be >= 1, got %d", slotsPerEntry)
	}
	return &Table{slots: slotsPerEntry, entries: make(map[uint64][]entry)}, nil
}

// MustNew is New for known-good slot counts.
func MustNew(slotsPerEntry int) *Table {
	t, err := New(slotsPerEntry)
	if err != nil {
		panic(err)
	}
	return t
}

// SlotsPerEntry returns the configured slot count.
func (t *Table) SlotsPerEntry() int { return t.slots }

// NumQueries returns the number of distinct query hashes present.
func (t *Table) NumQueries() int { return len(t.entries) }

// NumEntries returns the total number of entries including chained ones.
func (t *Table) NumEntries() int {
	n := 0
	for _, chain := range t.entries {
		n += len(chain)
	}
	return n
}

// NumRefs returns the total number of stored search references.
func (t *Table) NumRefs() int { return t.refCount }

// Contains reports whether the query hash has an entry — the cache
// hit/miss test. On the paper's prototype this lookup costs ~10 µs and
// is therefore negligible on both the hit and the miss path (Table 4).
func (t *Table) Contains(queryHash uint64) bool {
	_, ok := t.entries[queryHash]
	return ok
}

// Lookup returns the search references of a query ordered by
// descending score (ties broken by result hash for determinism).
// It returns nil for a miss.
func (t *Table) Lookup(queryHash uint64) []SearchRef {
	return t.LookupInto(queryHash, nil)
}

// LookupInto is Lookup writing into buf (reused when its capacity
// suffices), so steady-state callers can keep the serve path
// allocation-free. The returned slice aliases buf's backing array and
// is only valid until the next LookupInto with the same buffer. The
// order is identical to Lookup's: descending score, ties broken by
// ascending result hash.
func (t *Table) LookupInto(queryHash uint64, buf []SearchRef) []SearchRef {
	chain, ok := t.entries[queryHash]
	if !ok {
		return nil
	}
	refs := buf[:0]
	for _, e := range chain {
		refs = append(refs, e.refs...)
	}
	// Insertion sort instead of sort.Slice: chains are short (a handful
	// of refs) and sort.Slice's reflection-based closure allocates.
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refLess(refs[j], refs[j-1]); j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
	return refs
}

// refLess is Lookup's total order: descending score, then ascending
// result hash.
func refLess(a, b SearchRef) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ResultHash < b.ResultHash
}

// ContainsRef reports whether the (query, result) pair is stored,
// without allocating — the hit-path form of scanning Lookup's slice.
func (t *Table) ContainsRef(queryHash, resultHash uint64) bool {
	_, _, ok := t.find(queryHash, resultHash)
	return ok
}

// find locates the chain entry and slot index of a (query, result).
func (t *Table) find(queryHash, resultHash uint64) (ei, si int, ok bool) {
	for ei, e := range t.entries[queryHash] {
		for si, r := range e.refs {
			if r.ResultHash == resultHash {
				return ei, si, true
			}
		}
	}
	return 0, 0, false
}

// Score returns the ranking score of a (query, result) pair.
func (t *Table) Score(queryHash, resultHash uint64) (float64, bool) {
	ei, si, ok := t.find(queryHash, resultHash)
	if !ok {
		return 0, false
	}
	return t.entries[queryHash][ei].refs[si].Score, true
}

// Put inserts or updates the (query, result) pair with the given
// score. New results go into the first entry with a free slot, or a
// new chained entry when all are full.
func (t *Table) Put(queryHash uint64, ref SearchRef) {
	if ei, si, ok := t.find(queryHash, ref.ResultHash); ok {
		t.entries[queryHash][ei].refs[si].Score = ref.Score
		return
	}
	chain := t.entries[queryHash]
	for i := range chain {
		if len(chain[i].refs) < t.slots {
			chain[i].refs = append(chain[i].refs, ref)
			t.entries[queryHash] = chain
			t.refCount++
			return
		}
	}
	t.entries[queryHash] = append(chain, entry{refs: append(make([]SearchRef, 0, t.slots), ref)})
	t.refCount++
}

// SetScore updates the score of an existing pair.
func (t *Table) SetScore(queryHash, resultHash uint64, score float64) bool {
	ei, si, ok := t.find(queryHash, resultHash)
	if !ok {
		return false
	}
	t.entries[queryHash][ei].refs[si].Score = score
	return true
}

// MarkAccessed sets the pair's accessed flag — the bit the server-side
// cache manager uses to decide which entries to preserve (Section 5.4).
func (t *Table) MarkAccessed(queryHash, resultHash uint64) bool {
	ei, si, ok := t.find(queryHash, resultHash)
	if !ok {
		return false
	}
	t.entries[queryHash][ei].flags |= accessedBit << uint(si)
	return true
}

// Accessed reports whether the pair's accessed flag is set.
func (t *Table) Accessed(queryHash, resultHash uint64) bool {
	ei, si, ok := t.find(queryHash, resultHash)
	if !ok {
		return false
	}
	return t.entries[queryHash][ei].flags&(accessedBit<<uint(si)) != 0
}

// Remove deletes the (query, result) pair, compacting its entry and
// dropping empty entries. It reports whether the pair existed.
func (t *Table) Remove(queryHash, resultHash uint64) bool {
	ei, si, ok := t.find(queryHash, resultHash)
	if !ok {
		return false
	}
	chain := t.entries[queryHash]
	e := &chain[ei]
	// Compact refs and the corresponding flag bits.
	copy(e.refs[si:], e.refs[si+1:])
	e.refs = e.refs[:len(e.refs)-1]
	low := e.flags & ((1 << uint(si)) - 1)
	high := (e.flags >> uint(si+1)) << uint(si)
	e.flags = low | high
	t.refCount--
	if len(e.refs) == 0 {
		chain = append(chain[:ei], chain[ei+1:]...)
	}
	if len(chain) == 0 {
		delete(t.entries, queryHash)
	} else {
		t.entries[queryHash] = chain
	}
	return true
}

// RemoveResult deletes every pair that references the given result
// hash (used when a result's record is no longer available). It
// returns the number of pairs removed.
func (t *Table) RemoveResult(resultHash uint64) int {
	type loc struct{ q, r uint64 }
	var victims []loc
	for qh, chain := range t.entries {
		for _, e := range chain {
			for _, ref := range e.refs {
				if ref.ResultHash == resultHash {
					victims = append(victims, loc{qh, ref.ResultHash})
				}
			}
		}
	}
	for _, v := range victims {
		t.Remove(v.q, v.r)
	}
	return len(victims)
}

// Pair is a flattened (query, result) pair with its metadata, used for
// iteration and serialization.
type Pair struct {
	QueryHash  uint64
	ResultHash uint64
	Score      float64
	Accessed   bool
}

// Pairs returns every stored pair in deterministic order (by query
// hash, then result hash).
func (t *Table) Pairs() []Pair {
	out := make([]Pair, 0, t.refCount)
	for qh, chain := range t.entries {
		for _, e := range chain {
			for si, r := range e.refs {
				out = append(out, Pair{
					QueryHash:  qh,
					ResultHash: r.ResultHash,
					Score:      r.Score,
					Accessed:   e.flags&(accessedBit<<uint(si)) != 0,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QueryHash != out[j].QueryHash {
			return out[i].QueryHash < out[j].QueryHash
		}
		return out[i].ResultHash < out[j].ResultHash
	})
	return out
}

// Modeled on-device entry layout (Figure 10): an 8-byte query hash,
// slots x (8-byte result hash + 4-byte score), an 8-byte flags word,
// and an 8-byte chain/bucket link (every practical hash table pays a
// per-entry pointer). With the paper's two slots this is 48 bytes per
// entry — consistent with the paper's own arithmetic of ~200 KB of
// DRAM for the ~4000-entry evaluation cache (Figure 8).
const (
	entryFixedBytes = 8 + 8 + 8 // query hash + flags + chain link
	refBytes        = 8 + 4     // result hash + float32 score
)

// EntryBytes returns the modeled size of one entry with k slots.
func EntryBytes(k int) int { return entryFixedBytes + k*refBytes }

// FootprintBytes returns the modeled DRAM footprint of the table: the
// number of entries (including chained and partially empty ones) times
// the modeled entry size. This is the y-axis of Figures 8 and 11.
func (t *Table) FootprintBytes() int64 {
	return int64(t.NumEntries()) * int64(EntryBytes(t.slots))
}

// Encode serializes the table (used when the phone transmits its hash
// table to the server for the Section 5.4 update cycle).
func (t *Table) Encode(w io.Writer) error {
	pairs := t.Pairs()
	var buf [25]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(t.slots))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(pairs)))
	if _, err := w.Write(buf[:16]); err != nil {
		return err
	}
	for _, p := range pairs {
		binary.LittleEndian.PutUint64(buf[:8], p.QueryHash)
		binary.LittleEndian.PutUint64(buf[8:16], p.ResultHash)
		binary.LittleEndian.PutUint64(buf[16:24], floatBits(p.Score))
		buf[24] = 0
		if p.Accessed {
			buf[24] = 1
		}
		if _, err := w.Write(buf[:25]); err != nil {
			return err
		}
	}
	return nil
}

// Decode reconstructs a table serialized by Encode.
func Decode(r io.Reader) (*Table, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("hashtable: decode header: %w", err)
	}
	slots := int(binary.LittleEndian.Uint64(hdr[:8]))
	n := binary.LittleEndian.Uint64(hdr[8:16])
	t, err := New(slots)
	if err != nil {
		return nil, err
	}
	var buf [25]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("hashtable: decode pair %d: %w", i, err)
		}
		qh := binary.LittleEndian.Uint64(buf[:8])
		rh := binary.LittleEndian.Uint64(buf[8:16])
		score := bitsFloat(binary.LittleEndian.Uint64(buf[16:24]))
		t.Put(qh, SearchRef{ResultHash: rh, Score: score})
		if buf[24] != 0 {
			t.MarkAccessed(qh, rh)
		}
	}
	return t, nil
}

// Command logstats runs the Section 4 mobile search characterization
// over a search log produced by cmd/tracegen: popularity CDFs
// (Figure 4), per-user repeatability (Figure 5), and the Table 6 user
// classification.
package main

import (
	"flag"
	"fmt"
	"os"

	"pocketcloudlets/internal/analysis"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/searchlog"
)

func main() {
	var in = flag.String("i", "-", "input log file (- for stdin)")
	flag.Parse()

	u := engine.MustUniverse(engine.DefaultConfig())
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	log, err := searchlog.Read(r, u)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("log: %d entries over %v\n\n", len(log.Entries), log.Window)

	topNs := []int{1000, 2000, 4000, 6000, 10000}
	fmt.Println("community popularity (Figure 4):")
	for _, s := range []struct {
		name string
		f    analysis.Filter
	}{
		{"all queries", analysis.Filter{}},
		{"navigational", analysis.Filter{Nav: analysis.NavOnly}},
		{"non-navigational", analysis.Filter{Nav: analysis.NonNavOnly}},
	} {
		vols := analysis.QueryVolumes(log.Entries, u, s.f)
		fmt.Printf("  %-18s", s.name)
		for _, p := range analysis.TopShares(vols, topNs) {
			fmt.Printf("  top%-6d %5.1f%%", p.TopN, 100*p.Share)
		}
		fmt.Println()
	}

	fmt.Println("\nrepeatability (Figure 5):")
	stats := analysis.RepeatStats(log.Entries, u, analysis.Filter{})
	fmt.Printf("  users analyzed:          %d\n", len(stats))
	fmt.Printf("  mean repeat rate:        %.1f%%\n", 100*analysis.MeanRepeatFrac(stats))
	fmt.Printf("  users with >=70%% repeats: %.1f%%\n", 100*analysis.FracUsersNewAtMost(stats, 0.30))

	fmt.Println("\nuser classes (Table 6):")
	shares := analysis.ClassShares(analysis.MonthlyVolumes(log.Entries), analysis.Table6Brackets())
	for _, s := range shares {
		fmt.Printf("  %-15s %6d users  %5.1f%%\n", s.Bracket.Name, s.Users, 100*s.Share)
	}
}

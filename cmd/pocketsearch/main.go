// Command pocketsearch is an interactive PocketSearch session: it
// builds a simulated ecosystem, provisions a phone with the community
// cache, and serves queries typed on stdin — mirroring the paper's
// prototype GUI, where cached results appear instantly and misses go
// out over the (simulated) radio.
//
// Try queries like "site0", "site0.com" (an alias for the same page),
// "q1 facts" (a multi-result query), or anything else to see a miss.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pocketcloudlets"
	"pocketcloudlets/internal/engine"
)

func main() {
	var (
		radioName = flag.String("radio", "3g", "radio technology: 3g, edge, wifi")
		share     = flag.Float64("share", 0.55, "community cache cumulative-volume share")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var tech pocketcloudlets.RadioTech
	switch strings.ToLower(*radioName) {
	case "3g":
		tech = pocketcloudlets.Radio3G
	case "edge":
		tech = pocketcloudlets.RadioEDGE
	case "wifi":
		tech = pocketcloudlets.RadioWiFi
	default:
		fmt.Fprintf(os.Stderr, "unknown radio %q\n", *radioName)
		os.Exit(2)
	}

	fmt.Println("building simulated ecosystem (community logs, cache)...")
	ucfg := engine.Config{
		NavPairs:    24000,
		NonNavPairs: 120000,
		NonNavSegments: []engine.Segment{
			{Queries: 100, ResultsPerQuery: 6},
			{Queries: 400, ResultsPerQuery: 4},
			{Queries: 1500, ResultsPerQuery: 3},
			{Queries: 8000, ResultsPerQuery: 2},
		},
	}
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
		Seed: *seed, Users: 4000, UniverseConfig: &ucfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	content, err := sim.CommunityContent(0, *share)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	phone := sim.NewPhone(tech)
	ps, err := sim.NewPocketSearch(phone, content, pocketcloudlets.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ads, err := sim.NewPocketAds(phone, content)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cache ready: %d pairs covering %.0f%% of community volume (+%d cached ads); radio: %s\n",
		len(content.Triplets), 100*content.CoveredShare, ads.Len(), tech)
	fmt.Println("type a query (e.g. \"site0\"); Ctrl-D to exit")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("search> ")
		if !sc.Scan() {
			break
		}
		query := strings.TrimSpace(sc.Text())
		if query == "" {
			continue
		}
		// The auto-suggest box: instant completions and cached
		// results as the user types.
		if comps := ps.Autocomplete(query, 3); len(comps) > 0 {
			fmt.Print("  [completions]")
			for _, c := range comps {
				fmt.Printf("  %s", c.Query)
			}
			fmt.Println()
		}
		suggestions := ps.Suggest(query)
		if len(suggestions) > 0 {
			fmt.Println("  [auto-suggest, instant]")
			for i, r := range suggestions {
				if i >= 2 {
					break
				}
				fmt.Printf("    %d. %s — %s\n", i+1, r.Title, r.DisplayURL)
			}
		}
		// Submit the query, clicking the top result.
		clickURL := ""
		if len(suggestions) > 0 {
			clickURL = suggestions[0].URL
		} else if resp, ok := sim.Engine.Search(query); ok {
			clickURL = resp.Results[0].URL
		}
		out, err := ps.Query(query, clickURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "  error: %v\n", err)
			continue
		}
		path := "cache HIT (no radio)"
		if !out.Hit {
			path = fmt.Sprintf("MISS: fetched over %s", tech)
		}
		fmt.Printf("  %s in %v (lookup %v, fetch %v, network %v, render %v)\n",
			path, out.ResponseTime().Round(0), out.Lookup, out.Fetch.Round(0),
			out.Network.Round(0), out.Render.Round(0))
		for i, r := range out.Results {
			if i >= 3 {
				break
			}
			fmt.Printf("    %d. %s — %s\n", i+1, r.Title, r.DisplayURL)
		}
		for _, ad := range ads.Serve(query, out.Hit) {
			fmt.Printf("    [ad] %s\n", ad.Text)
		}
		fmt.Printf("  device: %.1f J consumed, %d radio wakeups, hit rate %.0f%%\n",
			phone.TotalEnergy(), phone.Link().Wakeups(), 100*ps.Stats().HitRate())
	}
	fmt.Println()
}

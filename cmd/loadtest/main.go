// Command loadtest drives a fleet of pocket cloudlets with calibrated
// load and reports latency percentiles, throughput, hit rate and shed
// rate. Two protocols are supported:
//
//   - open (default): requests arrive on a model-timestamped schedule
//     at mean rate -qps for -duration. -arrivals selects the process:
//     poisson (homogeneous, the default), diurnal (a sinusoidal day
//     curve with -diurnal-peak peak/trough ratio that offers exactly
//     the same total arrivals as poisson for the same seed), or
//     peruser (independent per-user renewal processes weighted by
//     workload class, each replaying that user's own stream). Overload
//     shows up as queue sheds and wall-latency inflation; the report's
//     offered_curve and peak_trough_served_ratio localize it in time.
//   - closed: every user of the -users population replays their own
//     month stream concurrently, waiting for each response. With
//     -duration 0 each user replays exactly one month, which makes the
//     run's counters fully deterministic given -seed. -pace S makes
//     each user think for S x their modeled response time between
//     requests (wall-clock only; per-user outcomes are byte-identical
//     to the unpaced run).
//
// Routing is pluggable (-placement): "modulo" is the legacy static
// uid-hash mod shards mapping; "ring" is consistent hashing over
// -vnodes virtual nodes per shard, which keeps a live resize cheap.
// -resize-to N reshards the fleet to N shards -resize-at into the run
// while it keeps serving: movers' personal caches are migrated with
// them (unless -resize-drop discards them — the remap-and-cold-start
// baseline), and the report's resizes/migrated_*/held_requests fields
// quantify the migration work.
//
// Miss batching (-batch) coalesces concurrent cloud misses into shared
// radio sessions — one wake-up, one handshake, one tail per batch —
// capped at -batchmax misses after a -batchlinger collection window
// (sized adaptively from the miss arrival rate with -batchadaptive),
// per shard by default or fleet-wide with -batchwide. The report's
// energy figures (energy_per_query_j, radio_energy_per_miss_j,
// radio_wakeups) quantify the savings; per-user hit/miss outcomes are
// unchanged for the same seed.
//
// Fault injection (-faults) turns on the deterministic connectivity
// fault model on the cloud-miss path: -loss drops each radio attempt
// with the given probability, -engineerr injects transient cloud
// errors, and -outage declares dead zones in model time ("6s/30s" =
// down the first 6s of every 30s; "10s-20s,40s-45s" = absolute
// windows). Failed misses retry up to -retries attempts with capped
// exponential backoff, then degrade: a stale answer from the personal
// or community cache, or an explicit "results unavailable" page. The
// report's answered_rate, degraded, unavailable, retries, exhausted
// and breaker_opens fields quantify availability under the scenario.
// Fault counters are seed-deterministic except when -batch is combined
// with -outage: outage exposure follows each user's model clock, which
// batch composition (wall-clock timing) legitimately shifts.
//
// Example (the acceptance run):
//
//	loadtest -users 10000 -duration 5s -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pocketcloudlets"
	"pocketcloudlets/internal/engine"
)

// runFlags is the parsed command line. Keeping it a plain struct lets
// validate run (and be tested) before any of the expensive ecosystem
// build starts, so a bad invocation fails in microseconds with a usage
// message instead of minutes later with a panic from deep inside the
// stack.
type runFlags struct {
	mode        string
	users       int
	qps         float64
	arrivals    string
	diurnalPeak float64
	pace        float64
	duration    time.Duration
	shards      int
	workers     int
	queue       int
	seed        int64
	share       float64
	month       int
	radio       string
	userBudget  int64
	fleetBudget int64

	placementName string
	vnodes        int
	resizeTo      int
	resizeAt      time.Duration
	resizeDrop    bool

	batch         bool
	batchMax      int
	batchLinger   time.Duration
	batchWide     bool
	batchAdaptive bool

	faults    bool
	loss      float64
	engineErr float64
	outage    string
	retries   int
	faultSeed int64

	check   bool
	jsonOut bool
}

func (rf *runFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&rf.mode, "mode", "open", "load protocol: open (Poisson at -qps) or closed (-users concurrent users)")
	fs.IntVar(&rf.users, "users", 4000, "simulated user population (and closed-loop concurrency)")
	fs.Float64Var(&rf.qps, "qps", 2000, "open-loop target mean arrival rate")
	fs.StringVar(&rf.arrivals, "arrivals", "poisson", "open-loop arrival process: poisson, diurnal or peruser")
	fs.Float64Var(&rf.diurnalPeak, "diurnal-peak", 0, "diurnal peak/trough rate ratio (with -arrivals diurnal); 0 = default 4")
	fs.Float64Var(&rf.pace, "pace", 0, "closed-loop think-time scale: sleep this fraction of each modeled response time between a user's requests; 0 = unpaced")
	fs.DurationVar(&rf.duration, "duration", 5*time.Second, "run length; 0 in closed mode replays exactly one month")
	fs.IntVar(&rf.shards, "shards", 8, "user shards (community cache replicas)")
	fs.IntVar(&rf.workers, "workers", 0, "worker pool size; 0 selects min(shards, GOMAXPROCS)")
	fs.IntVar(&rf.queue, "queue", 1024, "per-worker queue depth before shedding")
	fs.Int64Var(&rf.seed, "seed", 1, "simulation and arrival-schedule seed")
	fs.Float64Var(&rf.share, "share", 0.55, "community cache cumulative-volume share")
	fs.IntVar(&rf.month, "month", 1, "month to replay (content is built from the preceding month)")
	fs.StringVar(&rf.radio, "radio", "3g", "radio technology: 3g, edge, wifi")
	fs.Int64Var(&rf.userBudget, "userbudget", 0, "per-user personal flash cap in bytes; 0 = unlimited")
	fs.Int64Var(&rf.fleetBudget, "fleetbudget", 0, "fleet-wide personal flash budget in bytes; 0 = default 2.5 GB")
	fs.StringVar(&rf.placementName, "placement", "modulo", "user→shard routing: modulo (legacy static) or ring (consistent hashing)")
	fs.IntVar(&rf.vnodes, "vnodes", 0, "virtual nodes per shard on the ring (with -placement ring); 0 = default 64")
	fs.IntVar(&rf.resizeTo, "resize-to", 0, "live-reshard the fleet to this many shards during the run; 0 = no resize")
	fs.DurationVar(&rf.resizeAt, "resize-at", time.Second, "when after the run starts to trigger the -resize-to resize")
	fs.BoolVar(&rf.resizeDrop, "resize-drop", false, "discard movers' personal state on resize instead of migrating it (cold-start baseline)")
	fs.BoolVar(&rf.batch, "batch", false, "coalesce concurrent cloud misses into batched radio sessions")
	fs.IntVar(&rf.batchMax, "batchmax", 0, "max misses per batched radio session; 0 = default 16")
	fs.DurationVar(&rf.batchLinger, "batchlinger", 0, "how long a dispatcher holds an open batch for more misses; 0 = default 200µs")
	fs.BoolVar(&rf.batchWide, "batchwide", false, "pool misses fleet-wide into one dispatcher instead of one per shard")
	fs.BoolVar(&rf.batchAdaptive, "batchadaptive", false, "size the batch linger window from the observed miss arrival rate")
	fs.BoolVar(&rf.faults, "faults", false, "enable the deterministic connectivity-fault model")
	fs.Float64Var(&rf.loss, "loss", 0, "per-attempt probability a radio exchange is dropped (with -faults)")
	fs.Float64Var(&rf.engineErr, "engineerr", 0, "per-attempt probability of a transient cloud engine error (with -faults)")
	fs.StringVar(&rf.outage, "outage", "", `outage spec (with -faults): "6s/30s" duty cycle or "10s-20s,40s-45s" windows`)
	fs.IntVar(&rf.retries, "retries", 0, "max radio attempts per cloud miss (with -faults); 0 = default 4")
	fs.Int64Var(&rf.faultSeed, "faultseed", 0, "fault-model seed (with -faults); 0 reuses -seed")
	fs.BoolVar(&rf.check, "check", false, "verify report invariants after the run and exit non-zero on violation")
	fs.BoolVar(&rf.jsonOut, "json", false, "emit the report as JSON only")
}

// validate returns every problem with the flag combination, or nil
// when the invocation is runnable.
func (rf *runFlags) validate() []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	switch rf.mode {
	case "open":
		if rf.qps <= 0 {
			bad("-qps must be positive in open mode, got %g", rf.qps)
		}
		if rf.duration <= 0 {
			bad("-duration must be positive in open mode, got %v", rf.duration)
		}
		if rf.pace != 0 {
			bad("-pace only applies to closed mode")
		}
	case "closed":
		if rf.duration < 0 {
			bad("-duration must be non-negative, got %v", rf.duration)
		}
		if rf.arrivals != "poisson" {
			bad("-arrivals only applies to open mode")
		}
		if rf.pace < 0 {
			bad("-pace must be non-negative, got %g", rf.pace)
		}
	default:
		bad("unknown -mode %q (want open or closed)", rf.mode)
	}
	if _, err := pocketcloudlets.ParseArrivalKind(rf.arrivals); err != nil {
		bad("bad -arrivals: %v", err)
	}
	if rf.diurnalPeak != 0 {
		if rf.arrivals != "diurnal" {
			bad("-diurnal-peak requires -arrivals diurnal")
		}
		if rf.diurnalPeak < 1 {
			bad("-diurnal-peak must be at least 1, got %g", rf.diurnalPeak)
		}
	}
	if rf.users <= 0 {
		bad("-users must be positive, got %d", rf.users)
	}
	if rf.shards <= 0 {
		bad("-shards must be positive, got %d", rf.shards)
	}
	if rf.workers < 0 {
		bad("-workers must be non-negative, got %d", rf.workers)
	}
	if rf.queue <= 0 {
		bad("-queue must be positive, got %d", rf.queue)
	}
	if rf.share <= 0 || rf.share > 1 {
		bad("-share must be in (0, 1], got %g", rf.share)
	}
	if rf.month < 1 {
		bad("-month must be at least 1 (content is built from the preceding month), got %d", rf.month)
	}
	switch strings.ToLower(rf.radio) {
	case "3g", "edge", "wifi":
	default:
		bad("unknown -radio %q (want 3g, edge or wifi)", rf.radio)
	}
	if rf.userBudget < 0 {
		bad("-userbudget must be non-negative, got %d", rf.userBudget)
	}
	if rf.fleetBudget < 0 {
		bad("-fleetbudget must be non-negative, got %d", rf.fleetBudget)
	}

	switch rf.placementName {
	case "modulo", "ring":
	default:
		bad("unknown -placement %q (want modulo or ring)", rf.placementName)
	}
	if rf.vnodes < 0 {
		bad("-vnodes must be non-negative, got %d", rf.vnodes)
	}
	if rf.vnodes > 0 && rf.placementName != "ring" {
		bad("-vnodes only applies to -placement ring")
	}
	if rf.resizeTo < 0 {
		bad("-resize-to must be non-negative, got %d", rf.resizeTo)
	}
	if rf.resizeAt < 0 {
		bad("-resize-at must be non-negative, got %v", rf.resizeAt)
	}
	if rf.resizeDrop && rf.resizeTo == 0 {
		bad("-resize-drop requires -resize-to")
	}

	if !rf.batch {
		if rf.batchMax != 0 {
			bad("-batchmax requires -batch")
		}
		if rf.batchLinger != 0 {
			bad("-batchlinger requires -batch")
		}
		if rf.batchWide {
			bad("-batchwide requires -batch")
		}
		if rf.batchAdaptive {
			bad("-batchadaptive requires -batch")
		}
	} else {
		if rf.batchMax < 0 {
			bad("-batchmax must be non-negative, got %d", rf.batchMax)
		}
		if rf.batchLinger < 0 {
			bad("-batchlinger must be non-negative, got %v", rf.batchLinger)
		}
	}

	if !rf.faults {
		if rf.loss != 0 {
			bad("-loss requires -faults")
		}
		if rf.engineErr != 0 {
			bad("-engineerr requires -faults")
		}
		if rf.outage != "" {
			bad("-outage requires -faults")
		}
		if rf.retries != 0 {
			bad("-retries requires -faults")
		}
		if rf.faultSeed != 0 {
			bad("-faultseed requires -faults")
		}
	} else {
		if rf.loss < 0 || rf.loss >= 1 {
			bad("-loss must be in [0, 1), got %g", rf.loss)
		}
		if rf.engineErr < 0 || rf.engineErr >= 1 {
			bad("-engineerr must be in [0, 1), got %g", rf.engineErr)
		}
		if rf.retries < 0 {
			bad("-retries must be non-negative, got %d", rf.retries)
		}
		if rf.outage != "" {
			if _, _, _, err := pocketcloudlets.ParseOutageSpec(rf.outage); err != nil {
				bad("bad -outage: %v", err)
			}
		}
	}
	return problems
}

// placement resolves the -placement/-vnodes flags; nil selects the
// fleet's default (modulo), keeping the legacy mapping byte-identical.
func (rf *runFlags) placement() (pocketcloudlets.Placement, error) {
	if rf.placementName == "ring" {
		return pocketcloudlets.NewRingPlacement(rf.shards, rf.vnodes)
	}
	return nil, nil
}

func main() {
	var rf runFlags
	rf.register(flag.CommandLine)
	flag.Parse()

	if problems := rf.validate(); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "loadtest: %s\n", p)
		}
		fmt.Fprintln(os.Stderr, "run with -h for usage")
		os.Exit(2)
	}

	var tech pocketcloudlets.RadioTech
	switch strings.ToLower(rf.radio) {
	case "edge":
		tech = pocketcloudlets.RadioEDGE
	case "wifi":
		tech = pocketcloudlets.RadioWiFi
	default:
		tech = pocketcloudlets.Radio3G
	}

	progress := func(format string, args ...any) {
		if !rf.jsonOut {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	progress("building ecosystem: %d users, seed %d...\n", rf.users, rf.seed)
	ucfg := engine.Config{
		NavPairs:    24000,
		NonNavPairs: 120000,
		NonNavSegments: []engine.Segment{
			{Queries: 100, ResultsPerQuery: 6},
			{Queries: 400, ResultsPerQuery: 4},
			{Queries: 1500, ResultsPerQuery: 3},
			{Queries: 8000, ResultsPerQuery: 2},
		},
	}
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
		Seed: rf.seed, Users: rf.users, UniverseConfig: &ucfg,
	})
	if err != nil {
		fail(err)
	}
	content, err := sim.CommunityContent(rf.month-1, rf.share)
	if err != nil {
		fail(err)
	}
	progress("community content: %d pairs covering %.0f%% of volume\n",
		len(content.Triplets), 100*content.CoveredShare)

	var faultOpts pocketcloudlets.FaultOptions
	if rf.faults {
		faultOpts.Enabled = true
		faultOpts.Seed = rf.faultSeed
		if faultOpts.Seed == 0 {
			faultOpts.Seed = rf.seed
		}
		faultOpts.LossProb = rf.loss
		faultOpts.EngineErrProb = rf.engineErr
		if rf.outage != "" {
			every, down, windows, err := pocketcloudlets.ParseOutageSpec(rf.outage)
			if err != nil {
				fail(err)
			}
			faultOpts.OutageEvery, faultOpts.OutageFor, faultOpts.Windows = every, down, windows
		}
	}

	place, err := rf.placement()
	if err != nil {
		fail(err)
	}

	col := pocketcloudlets.NewLoadCollector()
	f, err := sim.NewFleet(content, pocketcloudlets.FleetConfig{
		Shards:             rf.shards,
		Workers:            rf.workers,
		QueueDepth:         rf.queue,
		Radio:              tech.Params(),
		PerUserBytes:       rf.userBudget,
		TotalPersonalBytes: rf.fleetBudget,
		Placement:          place,
		Batch: pocketcloudlets.FleetBatchOptions{
			Enabled:        rf.batch,
			MaxBatch:       rf.batchMax,
			Linger:         rf.batchLinger,
			FleetWide:      rf.batchWide,
			AdaptiveLinger: rf.batchAdaptive,
		},
		Faults:   faultOpts,
		Retry:    pocketcloudlets.RetryPolicy{MaxAttempts: rf.retries},
		Observer: col,
	})
	if err != nil {
		fail(err)
	}
	defer f.Close()
	progress("fleet up: %d shards (%s placement), %d workers, queue depth %d, radio %s, batching %v, faults %v\n",
		f.NumShards(), f.PlacementName(), f.NumWorkers(), rf.queue, tech, rf.batch, rf.faults)
	if rf.resizeTo > 0 {
		progress("will live-resize to %d shards %v into the run (drop state: %v)\n",
			rf.resizeTo, rf.resizeAt, rf.resizeDrop)
	}

	var report pocketcloudlets.LoadReport
	switch rf.mode {
	case "open":
		kind, kerr := pocketcloudlets.ParseArrivalKind(rf.arrivals)
		if kerr != nil {
			fail(kerr)
		}
		progress("open loop: %.0f mean QPS (%s arrivals) for %v...\n", rf.qps, kind, rf.duration)
		report, err = sim.RunOpenLoad(f, col, pocketcloudlets.OpenLoadConfig{
			QPS: rf.qps, Duration: rf.duration, Month: rf.month, Seed: rf.seed,
			Arrivals: kind, DiurnalPeak: rf.diurnalPeak,
			ResizeTo: rf.resizeTo, ResizeAt: rf.resizeAt, ResizeDrop: rf.resizeDrop,
		})
	case "closed":
		if rf.pace > 0 {
			progress("closed loop: %d concurrent users, paced at %gx model time...\n", rf.users, rf.pace)
		} else {
			progress("closed loop: %d concurrent users...\n", rf.users)
		}
		report, err = sim.RunClosedLoad(f, col, pocketcloudlets.ClosedLoadConfig{
			Users: rf.users, Month: rf.month, Duration: rf.duration, Seed: rf.seed,
			Pace:     pocketcloudlets.Pacer{Scale: rf.pace},
			ResizeTo: rf.resizeTo, ResizeAt: rf.resizeAt, ResizeDrop: rf.resizeDrop,
		})
	}
	if err != nil {
		fail(err)
	}

	if rf.jsonOut {
		raw, jerr := report.JSON()
		if jerr != nil {
			fail(jerr)
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(report.String())
	}
	if rf.check {
		if problems := checkReport(report, rf.faults); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "check failed: %s\n", p)
			}
			os.Exit(1)
		}
		progress("checks passed\n")
	}
}

// checkReport verifies the report's accounting invariants: every
// submission is booked exactly once, every served request came from
// exactly one tier, and the fault counters are silent when fault
// injection is off.
func checkReport(r pocketcloudlets.LoadReport, faultsOn bool) []string {
	var problems []string
	if r.Errors != 0 {
		problems = append(problems, fmt.Sprintf("errors: %d", r.Errors))
	}
	if r.Requests != r.Served+r.Shed+r.Canceled {
		problems = append(problems, fmt.Sprintf("requests %d != served %d + shed %d + canceled %d",
			r.Requests, r.Served, r.Shed, r.Canceled))
	}
	tiers := r.PersonalHits + r.CommunityHits + r.CloudMisses + r.Degraded + r.Unavailable
	if tiers+r.Errors != r.Served {
		problems = append(problems, fmt.Sprintf("tier counts %d + errors %d != served %d", tiers, r.Errors, r.Served))
	}
	if !faultsOn && r.Degraded+r.Unavailable+uint64(r.Retries)+uint64(r.Exhausted)+uint64(r.BreakerOpens) != 0 {
		problems = append(problems, fmt.Sprintf("fault counters nonzero with faults off: degraded %d unavailable %d retries %d exhausted %d breaker %d",
			r.Degraded, r.Unavailable, r.Retries, r.Exhausted, r.BreakerOpens))
	}
	var shardServed, shardShed uint64
	for _, so := range r.ShardOccupancy {
		shardServed += uint64(so.Served)
		shardShed += uint64(so.Shed)
	}
	if len(r.ShardOccupancy) > 0 && (shardServed != r.Served || shardShed != r.Shed) {
		problems = append(problems, fmt.Sprintf("shard occupancy sums %d served / %d shed, report says %d / %d",
			shardServed, shardShed, r.Served, r.Shed))
	}
	return problems
}

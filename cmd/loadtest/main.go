// Command loadtest drives a fleet of pocket cloudlets with calibrated
// load and reports latency percentiles, throughput, hit rate and shed
// rate. Two protocols are supported:
//
//   - open (default): requests arrive on a model-timestamped schedule
//     at mean rate -qps for -duration. -arrivals selects the process:
//     poisson (homogeneous, the default), diurnal (a sinusoidal day
//     curve with -diurnal-peak peak/trough ratio that offers exactly
//     the same total arrivals as poisson for the same seed), or
//     peruser (independent per-user renewal processes weighted by
//     workload class, each replaying that user's own stream). Overload
//     shows up as queue sheds and wall-latency inflation; the report's
//     offered_curve and peak_trough_served_ratio localize it in time.
//   - closed: every user of the -users population replays their own
//     month stream concurrently, waiting for each response. With
//     -duration 0 each user replays exactly one month, which makes the
//     run's counters fully deterministic given -seed. -pace S makes
//     each user think for S x their modeled response time between
//     requests (wall-clock only; per-user outcomes are byte-identical
//     to the unpaced run).
//
// Routing is pluggable (-placement): "modulo" is the legacy static
// uid-hash mod shards mapping; "ring" is consistent hashing over
// -vnodes virtual nodes per shard, which keeps a live resize cheap.
// -resize-to N reshards the fleet to N shards -resize-at into the run
// while it keeps serving: movers' personal caches are migrated with
// them (unless -resize-drop discards them — the remap-and-cold-start
// baseline), and the report's resizes/migrated_*/held_requests fields
// quantify the migration work.
//
// -autoscale hands the topology to the occupancy-driven controller
// (open mode with -placement ring): per-shard occupancy is sampled
// every -autoscale-interval of model time and the fleet is resized
// within [-autoscale-min, -autoscale-max] with hysteresis
// (-autoscale-high/-autoscale-low watermarks, -autoscale-up/-down
// streaks, -autoscale-rate req/s per fully-occupied shard). The
// report's energy ledger (fleet/device/shard joules and J per
// answered query) and autoscale action log quantify the energy
// proportionality the controller buys on a diurnal curve.
//
// Miss batching (-batch) coalesces concurrent cloud misses into shared
// radio sessions — one wake-up, one handshake, one tail per batch —
// capped at -batchmax misses after a -batchlinger collection window
// (sized adaptively from the miss arrival rate with -batchadaptive),
// per shard by default or fleet-wide with -batchwide. The report's
// energy figures (energy_per_query_j, radio_energy_per_miss_j,
// radio_wakeups) quantify the savings; per-user hit/miss outcomes are
// unchanged for the same seed.
//
// Fault injection (-faults) turns on the deterministic connectivity
// fault model on the cloud-miss path: -loss drops each radio attempt
// with the given probability, -engineerr injects transient cloud
// errors, and -outage declares dead zones in model time ("6s/30s" =
// down the first 6s of every 30s; "10s-20s,40s-45s" = absolute
// windows). Failed misses retry up to -retries attempts with capped
// exponential backoff, then degrade: a stale answer from the personal
// or community cache, or an explicit "results unavailable" page. The
// report's answered_rate, degraded, unavailable, retries, exhausted
// and breaker_opens fields quantify availability under the scenario.
// Fault counters are seed-deterministic except when -batch is combined
// with -outage: outage exposure follows each user's model clock, which
// batch composition (wall-clock timing) legitimately shifts.
//
// -scenario <file|preset> replaces the workload flags with a
// declarative JSON scenario (internal/scenario): multiple client
// classes with their own arrival processes, device tiers and fault
// profiles, compiled onto the same fleet and generators, with the
// report broken down per SLO class. Built-in presets: clone-storm,
// commuter, flash-crowd, regional-outage, mixed-fleet. Only -users and -seed may
// override a scenario (population and seed scaling); every other
// workload flag conflicts. Flag-only runs are themselves compiled as a
// single-class scenario tagged "default", so both paths exercise one
// code path and a flag run's per-user outcomes are byte-identical to
// the equivalent scenario.
//
// Example (the acceptance run):
//
//	loadtest -users 10000 -duration 5s -seed 1
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pocketcloudlets"
	"pocketcloudlets/internal/scenario"
)

// runFlags is the parsed command line. Keeping it a plain struct lets
// validate run (and be tested) before any of the expensive ecosystem
// build starts, so a bad invocation fails in microseconds with a usage
// message instead of minutes later with a panic from deep inside the
// stack.
type runFlags struct {
	mode        string
	users       int
	qps         float64
	arrivals    string
	diurnalPeak float64
	pace        float64
	duration    time.Duration
	shards      int
	workers     int
	queue       int
	seed        int64
	share       float64
	month       int
	radio       string
	userBudget  int64
	fleetBudget int64

	placementName string
	vnodes        int
	resizeTo      int
	resizeAt      time.Duration
	resizeDrop    bool

	autoscale         bool
	autoscaleInterval time.Duration
	autoscaleMin      int
	autoscaleMax      int
	autoscaleHigh     float64
	autoscaleLow      float64
	autoscaleUp       int
	autoscaleDown     int
	autoscaleRate     float64

	batch         bool
	batchMax      int
	batchLinger   time.Duration
	batchWide     bool
	batchAdaptive bool

	faults    bool
	loss      float64
	engineErr float64
	outage    string
	retries   int
	faultSeed int64

	replicas   int
	hedge      int
	hedgeDelay time.Duration
	hedgeMax   int

	backendRate    string
	backendQueue   int
	backendDisc    string
	backendDist    string
	backendOffered float64
	backendCancel  bool

	scenarioRef string

	communityUsers int
	noSuggest      bool

	check   bool
	jsonOut bool

	// setFlags records which flags the command line set explicitly
	// (see noteSet); validate uses it to reject workload flags that
	// conflict with -scenario.
	setFlags map[string]bool
}

func (rf *runFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&rf.mode, "mode", "open", "load protocol: open (Poisson at -qps) or closed (-users concurrent users)")
	fs.IntVar(&rf.users, "users", 4000, "simulated user population (and closed-loop concurrency)")
	fs.Float64Var(&rf.qps, "qps", 2000, "open-loop target mean arrival rate")
	fs.StringVar(&rf.arrivals, "arrivals", "poisson", "open-loop arrival process: poisson, diurnal or peruser")
	fs.Float64Var(&rf.diurnalPeak, "diurnal-peak", 0, "diurnal peak/trough rate ratio (with -arrivals diurnal); 0 = default 4")
	fs.Float64Var(&rf.pace, "pace", 0, "closed-loop think-time scale: sleep this fraction of each modeled response time between a user's requests; 0 = unpaced")
	fs.DurationVar(&rf.duration, "duration", 5*time.Second, "run length; 0 in closed mode replays exactly one month")
	fs.IntVar(&rf.shards, "shards", 8, "user shards (community cache replicas)")
	fs.IntVar(&rf.workers, "workers", 0, "worker pool size; 0 selects min(shards, GOMAXPROCS)")
	fs.IntVar(&rf.queue, "queue", 1024, "per-worker queue depth before shedding")
	fs.Int64Var(&rf.seed, "seed", 1, "simulation and arrival-schedule seed")
	fs.Float64Var(&rf.share, "share", 0.55, "community cache cumulative-volume share")
	fs.IntVar(&rf.month, "month", 1, "month to replay (content is built from the preceding month)")
	fs.StringVar(&rf.radio, "radio", "3g", "radio technology: 3g, edge, wifi")
	fs.Int64Var(&rf.userBudget, "userbudget", 0, "per-user personal flash cap in bytes; 0 = unlimited")
	fs.Int64Var(&rf.fleetBudget, "fleetbudget", 0, "fleet-wide personal flash budget in bytes; 0 = default 2.5 GB")
	fs.StringVar(&rf.placementName, "placement", "modulo", "user→shard routing: modulo (legacy static) or ring (consistent hashing)")
	fs.IntVar(&rf.vnodes, "vnodes", 0, "virtual nodes per shard on the ring (with -placement ring); 0 = default 64")
	fs.IntVar(&rf.resizeTo, "resize-to", 0, "live-reshard the fleet to this many shards during the run; 0 = no resize")
	fs.DurationVar(&rf.resizeAt, "resize-at", time.Second, "when after the run starts to trigger the -resize-to resize")
	fs.BoolVar(&rf.resizeDrop, "resize-drop", false, "discard movers' personal state on resize instead of migrating it (cold-start baseline)")
	fs.BoolVar(&rf.autoscale, "autoscale", false, "drive shard count from per-shard occupancy sampled on a model-time cadence (open mode with -placement ring)")
	fs.DurationVar(&rf.autoscaleInterval, "autoscale-interval", 0, "autoscaler model-time sampling cadence (with -autoscale); 0 = default 1s")
	fs.IntVar(&rf.autoscaleMin, "autoscale-min", 0, "autoscaler shard floor (with -autoscale); 0 = default 1")
	fs.IntVar(&rf.autoscaleMax, "autoscale-max", 0, "autoscaler shard ceiling (with -autoscale); 0 = default 4x the initial -shards")
	fs.Float64Var(&rf.autoscaleHigh, "autoscale-high", 0, "occupancy watermark above which samples count toward scaling up (with -autoscale); 0 = default 0.75")
	fs.Float64Var(&rf.autoscaleLow, "autoscale-low", 0, "occupancy watermark below which samples count toward scaling down (with -autoscale); 0 = default 0.35")
	fs.IntVar(&rf.autoscaleUp, "autoscale-up", 0, "consecutive hot samples before a scale-up fires (with -autoscale); 0 = default 2")
	fs.IntVar(&rf.autoscaleDown, "autoscale-down", 0, "consecutive cold samples before a scale-down fires (with -autoscale); 0 = default 3")
	fs.Float64Var(&rf.autoscaleRate, "autoscale-rate", 0, "model-time serving rate (req/s) at which one shard counts as fully occupied (with -autoscale); 0 = default 50")
	fs.BoolVar(&rf.batch, "batch", false, "coalesce concurrent cloud misses into batched radio sessions")
	fs.IntVar(&rf.batchMax, "batchmax", 0, "max misses per batched radio session; 0 = default 16")
	fs.DurationVar(&rf.batchLinger, "batchlinger", 0, "how long a dispatcher holds an open batch for more misses; 0 = default 200µs")
	fs.BoolVar(&rf.batchWide, "batchwide", false, "pool misses fleet-wide into one dispatcher instead of one per shard")
	fs.BoolVar(&rf.batchAdaptive, "batchadaptive", false, "size the batch linger window from the observed miss arrival rate")
	fs.BoolVar(&rf.faults, "faults", false, "enable the deterministic connectivity-fault model")
	fs.Float64Var(&rf.loss, "loss", 0, "per-attempt probability a radio exchange is dropped (with -faults)")
	fs.Float64Var(&rf.engineErr, "engineerr", 0, "per-attempt probability of a transient cloud engine error (with -faults)")
	fs.StringVar(&rf.outage, "outage", "", `outage spec (with -faults): "6s/30s" duty cycle or "10s-20s,40s-45s" windows`)
	fs.IntVar(&rf.retries, "retries", 0, "max radio attempts per cloud miss (with -faults); 0 = default 4")
	fs.Int64Var(&rf.faultSeed, "faultseed", 0, "fault-model seed (with -faults); 0 reuses -seed")
	fs.IntVar(&rf.replicas, "replicas", 0, "modeled cloud backend replicas with independent fault draws (with -faults); 0 = single backend")
	fs.IntVar(&rf.hedge, "hedge", 0, "hedged-miss clone factor: dispatch each cloud miss to up to this many replicas, first success wins (with -faults and -replicas ≥ 2); 0 or 1 = no hedging")
	fs.DurationVar(&rf.hedgeDelay, "hedgedelay", 0, "model-time delay before each hedge clone launches (with -hedge); 0 = immediate clones")
	fs.IntVar(&rf.hedgeMax, "hedgemax", 0, "max concurrent dispatches per hedged miss (with -hedge); 0 = clone factor")
	fs.StringVar(&rf.backendRate, "backend-rate", "", `model the cloud replicas as finite-capacity queues at this per-replica service rate in requests/second, or "inf" for an infinitely fast server (with -faults); empty = analytic miss path`)
	fs.IntVar(&rf.backendQueue, "backend-queue", 0, "replica queue bound (with -backend-rate): fifo caps backlog at this many mean service times, ps caps concurrent sharing; 0 = unbounded")
	fs.StringVar(&rf.backendDisc, "backend-disc", "", "replica queueing discipline (with -backend-rate): fifo or ps; empty = fifo")
	fs.StringVar(&rf.backendDist, "backend-dist", "", "replica service-time distribution (with -backend-rate): exp or fixed; empty = exp")
	fs.Float64Var(&rf.backendOffered, "backend-offered", 0, "fleet-wide background miss arrival rate in requests/second the replica queues simmer under (with -backend-rate); 0 = no background load")
	fs.BoolVar(&rf.backendCancel, "backend-cancel", false, "reclaim a hedge loser's unexecuted service when the winner's answer cancels it (with -backend-rate)")
	fs.StringVar(&rf.scenarioRef, "scenario", "", "run a declarative scenario: a JSON file path or a preset (clone-storm, commuter, flash-crowd, regional-outage, mixed-fleet)")
	fs.IntVar(&rf.communityUsers, "communityusers", 0, "build community content from only the first N users' logs (million-user fleets: avoids materializing the full month log); 0 = all users")
	fs.BoolVar(&rf.noSuggest, "nosuggest", false, "skip the per-user auto-suggest index (million-user fleets: saves ~2.5 KB/user; no modeled outcome changes)")
	fs.BoolVar(&rf.check, "check", false, "verify report invariants after the run and exit non-zero on violation")
	fs.BoolVar(&rf.jsonOut, "json", false, "emit the report as JSON only")
}

// noteSet records which flags the command line set explicitly, so
// validate can tell "-mode open" from the default. Call it right
// after fs.Parse.
func (rf *runFlags) noteSet(fs *flag.FlagSet) {
	rf.setFlags = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { rf.setFlags[f.Name] = true })
}

// scenarioCompatible are the flags that still apply when -scenario
// owns the workload shape: population/seed scaling and output control.
var scenarioCompatible = map[string]bool{
	"scenario": true, "users": true, "seed": true, "json": true, "check": true,
	"communityusers": true, "nosuggest": true,
}

// validate returns every problem with the flag combination, or nil
// when the invocation is runnable.
func (rf *runFlags) validate() []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if rf.scenarioRef != "" {
		var conflicts []string
		for name := range rf.setFlags {
			if !scenarioCompatible[name] {
				conflicts = append(conflicts, name)
			}
		}
		sort.Strings(conflicts)
		for _, name := range conflicts {
			bad("-%s conflicts with -scenario (the scenario owns the workload shape; only -users, -seed, -json and -check compose)", name)
		}
		if rf.setFlags["users"] && rf.users <= 0 {
			bad("-users must be positive, got %d", rf.users)
		}
		return problems
	}

	switch rf.mode {
	case "open":
		if rf.qps <= 0 {
			bad("-qps must be positive in open mode, got %g", rf.qps)
		}
		if rf.duration <= 0 {
			bad("-duration must be positive in open mode, got %v", rf.duration)
		}
		if rf.pace != 0 {
			bad("-pace only applies to closed mode")
		}
	case "closed":
		if rf.duration < 0 {
			bad("-duration must be non-negative, got %v", rf.duration)
		}
		if rf.arrivals != "poisson" {
			bad("-arrivals only applies to open mode")
		}
		if rf.pace < 0 {
			bad("-pace must be non-negative, got %g", rf.pace)
		}
	default:
		bad("unknown -mode %q (want open or closed)", rf.mode)
	}
	if _, err := pocketcloudlets.ParseArrivalKind(rf.arrivals); err != nil {
		bad("bad -arrivals: %v", err)
	}
	if rf.diurnalPeak != 0 {
		if rf.arrivals != "diurnal" {
			bad("-diurnal-peak requires -arrivals diurnal")
		}
		if rf.diurnalPeak < 1 {
			bad("-diurnal-peak must be at least 1, got %g", rf.diurnalPeak)
		}
	}
	if rf.users <= 0 {
		bad("-users must be positive, got %d", rf.users)
	}
	if rf.shards <= 0 {
		bad("-shards must be positive, got %d", rf.shards)
	}
	if rf.workers < 0 {
		bad("-workers must be non-negative, got %d", rf.workers)
	}
	if rf.queue <= 0 {
		bad("-queue must be positive, got %d", rf.queue)
	}
	if rf.share <= 0 || rf.share > 1 {
		bad("-share must be in (0, 1], got %g", rf.share)
	}
	if rf.month < 1 {
		bad("-month must be at least 1 (content is built from the preceding month), got %d", rf.month)
	}
	switch strings.ToLower(rf.radio) {
	case "3g", "edge", "wifi":
	default:
		bad("unknown -radio %q (want 3g, edge or wifi)", rf.radio)
	}
	if rf.userBudget < 0 {
		bad("-userbudget must be non-negative, got %d", rf.userBudget)
	}
	if rf.fleetBudget < 0 {
		bad("-fleetbudget must be non-negative, got %d", rf.fleetBudget)
	}
	if rf.communityUsers < 0 {
		bad("-communityusers must be non-negative, got %d", rf.communityUsers)
	}

	switch rf.placementName {
	case "modulo", "ring":
	default:
		bad("unknown -placement %q (want modulo or ring)", rf.placementName)
	}
	if rf.vnodes < 0 {
		bad("-vnodes must be non-negative, got %d", rf.vnodes)
	}
	if rf.vnodes > 0 && rf.placementName != "ring" {
		bad("-vnodes only applies to -placement ring")
	}
	if rf.resizeTo < 0 {
		bad("-resize-to must be non-negative, got %d", rf.resizeTo)
	}
	if rf.resizeAt < 0 {
		bad("-resize-at must be non-negative, got %v", rf.resizeAt)
	}
	if rf.resizeDrop && rf.resizeTo == 0 {
		bad("-resize-drop requires -resize-to")
	}

	if !rf.autoscale {
		for _, n := range []struct {
			name string
			set  bool
		}{
			{"autoscale-interval", rf.autoscaleInterval != 0},
			{"autoscale-min", rf.autoscaleMin != 0},
			{"autoscale-max", rf.autoscaleMax != 0},
			{"autoscale-high", rf.autoscaleHigh != 0},
			{"autoscale-low", rf.autoscaleLow != 0},
			{"autoscale-up", rf.autoscaleUp != 0},
			{"autoscale-down", rf.autoscaleDown != 0},
			{"autoscale-rate", rf.autoscaleRate != 0},
		} {
			if n.set {
				bad("-%s requires -autoscale", n.name)
			}
		}
	} else {
		if rf.mode != "open" {
			bad("-autoscale only applies to open mode (the sampler rides the arrival schedule)")
		}
		if rf.placementName != "ring" {
			bad("-autoscale requires -placement ring (resizes route through consistent hashing)")
		}
		if rf.resizeTo != 0 {
			bad("-autoscale conflicts with -resize-to (the controller owns the topology)")
		}
		if rf.autoscaleInterval < 0 {
			bad("-autoscale-interval must be non-negative, got %v", rf.autoscaleInterval)
		}
		if rf.autoscaleMin < 0 || rf.autoscaleMax < 0 {
			bad("-autoscale-min/-autoscale-max must be non-negative, got %d/%d", rf.autoscaleMin, rf.autoscaleMax)
		}
		if rf.autoscaleMin > 0 && rf.autoscaleMax > 0 && rf.autoscaleMin > rf.autoscaleMax {
			bad("-autoscale-min %d exceeds -autoscale-max %d", rf.autoscaleMin, rf.autoscaleMax)
		}
		if rf.autoscaleHigh < 0 || rf.autoscaleHigh > 1 {
			bad("-autoscale-high must be in [0, 1], got %g", rf.autoscaleHigh)
		}
		if rf.autoscaleLow < 0 {
			bad("-autoscale-low must be non-negative, got %g", rf.autoscaleLow)
		}
		if rf.autoscaleHigh > 0 && rf.autoscaleLow > 0 && rf.autoscaleLow >= rf.autoscaleHigh {
			bad("-autoscale-low %g must be below -autoscale-high %g", rf.autoscaleLow, rf.autoscaleHigh)
		}
		if rf.autoscaleUp < 0 || rf.autoscaleDown < 0 {
			bad("-autoscale-up/-autoscale-down must be non-negative, got %d/%d", rf.autoscaleUp, rf.autoscaleDown)
		}
		if rf.autoscaleRate < 0 {
			bad("-autoscale-rate must be non-negative, got %g", rf.autoscaleRate)
		}
	}

	if !rf.batch {
		if rf.batchMax != 0 {
			bad("-batchmax requires -batch")
		}
		if rf.batchLinger != 0 {
			bad("-batchlinger requires -batch")
		}
		if rf.batchWide {
			bad("-batchwide requires -batch")
		}
		if rf.batchAdaptive {
			bad("-batchadaptive requires -batch")
		}
	} else {
		if rf.batchMax < 0 {
			bad("-batchmax must be non-negative, got %d", rf.batchMax)
		}
		if rf.batchLinger < 0 {
			bad("-batchlinger must be non-negative, got %v", rf.batchLinger)
		}
	}

	if !rf.faults {
		if rf.loss != 0 {
			bad("-loss requires -faults")
		}
		if rf.engineErr != 0 {
			bad("-engineerr requires -faults")
		}
		if rf.outage != "" {
			bad("-outage requires -faults")
		}
		if rf.retries != 0 {
			bad("-retries requires -faults")
		}
		if rf.faultSeed != 0 {
			bad("-faultseed requires -faults")
		}
		if rf.replicas != 0 {
			bad("-replicas requires -faults")
		}
		if rf.hedge != 0 {
			bad("-hedge requires -faults")
		}
		if rf.backendRate != "" {
			bad("-backend-rate requires -faults (the admission planner runs on the faulted miss path)")
		}
	} else {
		if rf.loss < 0 || rf.loss >= 1 {
			bad("-loss must be in [0, 1), got %g", rf.loss)
		}
		if rf.engineErr < 0 || rf.engineErr >= 1 {
			bad("-engineerr must be in [0, 1), got %g", rf.engineErr)
		}
		if rf.retries < 0 {
			bad("-retries must be non-negative, got %d", rf.retries)
		}
		if rf.outage != "" {
			if _, _, _, err := pocketcloudlets.ParseOutageSpec(rf.outage); err != nil {
				bad("bad -outage: %v", err)
			}
		}
		if rf.replicas < 0 {
			bad("-replicas must be non-negative, got %d", rf.replicas)
		}
		if rf.hedge < 0 {
			bad("-hedge must be non-negative, got %d", rf.hedge)
		}
		if rf.hedge >= 2 && rf.replicas < 2 {
			bad("-hedge %d requires -replicas ≥ 2, got %d", rf.hedge, rf.replicas)
		}
	}
	if rf.backendRate == "" {
		if rf.backendQueue != 0 {
			bad("-backend-queue requires -backend-rate")
		}
		if rf.backendDisc != "" {
			bad("-backend-disc requires -backend-rate")
		}
		if rf.backendDist != "" {
			bad("-backend-dist requires -backend-rate")
		}
		if rf.backendOffered != 0 {
			bad("-backend-offered requires -backend-rate")
		}
		if rf.backendCancel {
			bad("-backend-cancel requires -backend-rate")
		}
	} else {
		if _, err := parseRate(rf.backendRate); err != nil {
			bad("bad -backend-rate: %v", err)
		}
		if rf.backendQueue < 0 {
			bad("-backend-queue must be non-negative, got %d", rf.backendQueue)
		}
		switch rf.backendDisc {
		case "", "fifo", "ps":
		default:
			bad("unknown -backend-disc %q (want fifo or ps)", rf.backendDisc)
		}
		switch rf.backendDist {
		case "", "exp", "fixed":
		default:
			bad("unknown -backend-dist %q (want exp or fixed)", rf.backendDist)
		}
		if rf.backendOffered < 0 {
			bad("-backend-offered must be non-negative, got %g", rf.backendOffered)
		}
	}

	if rf.hedge < 2 {
		if rf.hedgeDelay != 0 {
			bad("-hedgedelay requires -hedge ≥ 2")
		}
		if rf.hedgeMax != 0 {
			bad("-hedgemax requires -hedge ≥ 2")
		}
	} else {
		if rf.hedgeDelay < 0 {
			bad("-hedgedelay must be non-negative, got %v", rf.hedgeDelay)
		}
		if rf.hedgeMax < 0 {
			bad("-hedgemax must be non-negative, got %d", rf.hedgeMax)
		}
		if rf.hedgeMax > rf.hedge {
			bad("-hedgemax %d exceeds -hedge %d", rf.hedgeMax, rf.hedge)
		}
	}
	return problems
}

// parseRate parses a service rate: a positive requests-per-second
// number, or "inf" for an infinitely fast server.
func parseRate(s string) (float64, error) {
	if strings.EqualFold(s, "inf") {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("want a rate number or \"inf\", got %q", s)
	}
	if v <= 0 || math.IsInf(v, -1) || math.IsNaN(v) {
		return 0, fmt.Errorf("rate must be positive (or \"inf\"), got %q", s)
	}
	return v, nil
}

// placement resolves the -placement/-vnodes flags; nil selects the
// fleet's default (modulo), keeping the legacy mapping byte-identical.
func (rf *runFlags) placement() (pocketcloudlets.Placement, error) {
	if rf.placementName == "ring" {
		return pocketcloudlets.NewRingPlacement(rf.shards, rf.vnodes)
	}
	return nil, nil
}

// toSpec lowers the legacy flag surface onto a single-class scenario
// spec, so the flag path and the -scenario path run through one
// compiler. The implicit class is tagged "default", which also gives
// flag runs a per-class report row; per-user outcomes are
// byte-identical to the pre-scenario flag path.
func (rf *runFlags) toSpec() *scenario.Spec {
	spec := &scenario.Spec{
		Version:        scenario.Version,
		Mode:           rf.mode,
		Users:          rf.users,
		Seed:           rf.seed,
		Month:          rf.month,
		Duration:       scenario.Duration(rf.duration),
		CommunityShare: rf.share,
		Fleet: scenario.FleetSpec{
			Shards:           rf.shards,
			Workers:          rf.workers,
			Queue:            rf.queue,
			Radio:            strings.ToLower(rf.radio),
			Placement:        rf.placementName,
			VNodes:           rf.vnodes,
			UserBudgetBytes:  rf.userBudget,
			FleetBudgetBytes: rf.fleetBudget,
			Batch: scenario.BatchSpec{
				Enabled:   rf.batch,
				Max:       rf.batchMax,
				Linger:    scenario.Duration(rf.batchLinger),
				FleetWide: rf.batchWide,
				Adaptive:  rf.batchAdaptive,
			},
		},
	}
	if rf.autoscale {
		spec.Fleet.Autoscale = &scenario.AutoscaleSpec{
			Interval:     scenario.Duration(rf.autoscaleInterval),
			Min:          rf.autoscaleMin,
			Max:          rf.autoscaleMax,
			High:         rf.autoscaleHigh,
			Low:          rf.autoscaleLow,
			UpAfter:      rf.autoscaleUp,
			DownAfter:    rf.autoscaleDown,
			RatePerShard: rf.autoscaleRate,
		}
	}
	cls := scenario.ClassSpec{Name: "default", Share: 1}
	switch rf.mode {
	case "open":
		spec.QPS = rf.qps
		cls.Arrival = &scenario.ArrivalSpec{
			Process:      rf.arrivals,
			RateFraction: 1,
			PeakTrough:   rf.diurnalPeak,
		}
	case "closed":
		if rf.pace > 0 {
			cls.Think = &scenario.ThinkSpec{Scale: rf.pace}
		}
	}
	if rf.faults {
		spec.Faults = &scenario.FaultSpec{
			Loss:      rf.loss,
			EngineErr: rf.engineErr,
			Outage:    rf.outage,
			Retries:   rf.retries,
			Seed:      rf.faultSeed,
		}
		spec.Fleet.Replicas = rf.replicas
		if rf.hedge >= 2 {
			cls.Hedge = &scenario.HedgeSpec{
				CloneFactor: rf.hedge,
				Delay:       scenario.Duration(rf.hedgeDelay),
				MaxInflight: rf.hedgeMax,
			}
		}
		if rf.backendRate != "" {
			rate, _ := parseRate(rf.backendRate) // validate already vetted it
			spec.Fleet.Backend = &scenario.BackendSpec{
				ServiceRate: scenario.Rate(rate),
				Queue:       rf.backendQueue,
				Discipline:  rf.backendDisc,
				Dist:        rf.backendDist,
				Offered:     rf.backendOffered,
				CancelOnWin: rf.backendCancel,
			}
		}
	}
	spec.Classes = []scenario.ClassSpec{cls}
	return spec
}

func main() {
	var rf runFlags
	rf.register(flag.CommandLine)
	flag.Parse()
	rf.noteSet(flag.CommandLine)

	if problems := rf.validate(); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "loadtest: %s\n", p)
		}
		fmt.Fprintln(os.Stderr, "run with -h for usage")
		os.Exit(2)
	}

	progress := func(format string, args ...any) {
		if !rf.jsonOut {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Both paths — flags and -scenario — compile to the same scenario
	// spec and run through the same machinery.
	var (
		spec   *scenario.Spec
		source string
		err    error
	)
	if rf.scenarioRef != "" {
		spec, source, err = scenario.Load(rf.scenarioRef)
		if err != nil {
			fail(err)
		}
		if rf.setFlags["users"] {
			spec.Users = rf.users
		}
		if rf.setFlags["seed"] {
			spec.Seed = rf.seed
		}
	} else {
		spec = rf.toSpec()
	}
	comp, err := scenario.Compile(spec, source)
	if err != nil {
		fail(err)
	}
	// The live-resize knobs ride outside the spec: they describe an
	// operation performed on the fleet during the run, not the workload.
	comp.Open.ResizeTo, comp.Open.ResizeAt, comp.Open.ResizeDrop = rf.resizeTo, rf.resizeAt, rf.resizeDrop
	comp.Closed.ResizeTo, comp.Closed.ResizeAt, comp.Closed.ResizeDrop = rf.resizeTo, rf.resizeAt, rf.resizeDrop

	progress("building ecosystem: %d users, seed %d...\n", spec.Users, spec.Seed)
	ucfg := scenario.UniverseConfig()
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
		Seed: spec.Seed, Users: spec.Users, UniverseConfig: &ucfg,
	})
	if err != nil {
		fail(err)
	}
	content, err := sim.CommunityContentFrom(spec.Month-1, spec.CommunityShare, rf.communityUsers)
	if err != nil {
		fail(err)
	}
	progress("community content: %d pairs covering %.0f%% of volume\n",
		len(content.Triplets), 100*content.CoveredShare)

	col := pocketcloudlets.NewLoadCollector()
	fcfg, err := comp.FleetConfig(col)
	if err != nil {
		fail(err)
	}
	// A memory-layout knob like -communityusers, not a workload one:
	// the auto-suggest index is never queried by a load run, and at
	// million-user populations its per-user cost decides whether the
	// fleet fits in host memory.
	fcfg.Options.DisableSuggest = rf.noSuggest
	f, err := sim.NewFleet(content, fcfg)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	progress("fleet up: %d shards (%s placement), %d workers, radio %s, batching %v, faults %v\n",
		f.NumShards(), f.PlacementName(), f.NumWorkers(), spec.Fleet.Radio,
		spec.Fleet.Batch.Enabled, spec.Faults != nil)
	if rf.resizeTo > 0 {
		progress("will live-resize to %d shards %v into the run (drop state: %v)\n",
			rf.resizeTo, rf.resizeAt, rf.resizeDrop)
	}

	switch spec.Mode {
	case "open":
		progress("open loop: %.0f mean QPS for %v, %d classes...\n", spec.QPS, spec.Duration.D(), len(spec.Classes))
	case "closed":
		progress("closed loop: %d concurrent users, %d classes...\n", spec.Users, len(spec.Classes))
	case "trace":
		progress("trace replay: %s...\n", spec.Trace)
	}
	report, err := comp.Run(f, col, sim.Generator)
	if err != nil {
		fail(err)
	}

	if rf.jsonOut {
		raw, jerr := report.JSON()
		if jerr != nil {
			fail(jerr)
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(report.String())
	}
	if rf.check {
		faultsOn := spec.Faults != nil
		hedgeOn := false
		for _, cls := range spec.Classes {
			if cls.Faults != nil {
				faultsOn = true
			}
			if cls.Hedge != nil && cls.Hedge.CloneFactor >= 2 && spec.Fleet.Replicas >= 2 {
				hedgeOn = true
			}
		}
		backendOn := spec.Fleet.Backend != nil
		autoscaleOn := spec.Fleet.Autoscale != nil
		if problems := checkReport(report, faultsOn, hedgeOn, backendOn, autoscaleOn); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "check failed: %s\n", p)
			}
			os.Exit(1)
		}
		progress("checks passed\n")
	}
}

// checkReport verifies the report's accounting invariants: every
// submission is booked exactly once, every served request came from
// exactly one tier, the fault counters are silent when fault
// injection is off, the hedge counters cross-foot (every hedged
// cloud serve was won by exactly one dispatch; wasted clones never
// exceed clones launched), the backend replica rows cross-foot
// (arrivals partition into served, rejected and abandoned), the
// energy ledger cross-foots (device = base + radio, and it tracks the
// collector's per-response sum; fleet = device + shards), and the
// autoscale action log stays within bounds and chains shard counts.
func checkReport(r pocketcloudlets.LoadReport, faultsOn, hedgeOn, backendOn, autoscaleOn bool) []string {
	var problems []string
	if r.Errors != 0 {
		problems = append(problems, fmt.Sprintf("errors: %d", r.Errors))
	}
	if r.Requests != r.Served+r.Shed+r.Canceled {
		problems = append(problems, fmt.Sprintf("requests %d != served %d + shed %d + canceled %d",
			r.Requests, r.Served, r.Shed, r.Canceled))
	}
	tiers := r.PersonalHits + r.CommunityHits + r.CloudMisses + r.Degraded + r.Unavailable
	if tiers+r.Errors != r.Served {
		problems = append(problems, fmt.Sprintf("tier counts %d + errors %d != served %d", tiers, r.Errors, r.Served))
	}
	if !faultsOn && r.Degraded+r.Unavailable+uint64(r.Retries)+uint64(r.Exhausted)+uint64(r.BreakerOpens) != 0 {
		problems = append(problems, fmt.Sprintf("fault counters nonzero with faults off: degraded %d unavailable %d retries %d exhausted %d breaker %d",
			r.Degraded, r.Unavailable, r.Retries, r.Exhausted, r.BreakerOpens))
	}
	if !hedgeOn && r.ClonesLaunched+r.PrimaryWins+r.CloneWins+r.WastedAttempts != 0 {
		problems = append(problems, fmt.Sprintf("hedge counters nonzero with hedging off: clones %d primary wins %d clone wins %d wasted %d",
			r.ClonesLaunched, r.PrimaryWins, r.CloneWins, r.WastedAttempts))
	}
	if hedgeOn {
		// Every hedged cloud miss is won by exactly one dispatch, so with
		// no cancellations the wins partition the cloud serves.
		if r.Canceled == 0 && r.PrimaryWins+r.CloneWins != int64(r.CloudMisses) {
			problems = append(problems, fmt.Sprintf("primary wins %d + clone wins %d != cloud misses %d",
				r.PrimaryWins, r.CloneWins, r.CloudMisses))
		}
		if r.CloneWins > r.ClonesLaunched {
			problems = append(problems, fmt.Sprintf("clone wins %d exceed clones launched %d", r.CloneWins, r.ClonesLaunched))
		}
	}
	if len(r.ReplicaBreakerOpens) > 0 {
		var sum int64
		for _, n := range r.ReplicaBreakerOpens {
			sum += n
		}
		if sum != r.BreakerOpens {
			problems = append(problems, fmt.Sprintf("replica breaker opens sum to %d, report says %d", sum, r.BreakerOpens))
		}
	}
	if !backendOn && len(r.Backend) > 0 {
		problems = append(problems, fmt.Sprintf("backend rows present with the backend model off: %d replicas", len(r.Backend)))
	}
	if backendOn && len(r.Backend) == 0 {
		problems = append(problems, "backend model on but the report has no replica rows")
	}
	for _, br := range r.Backend {
		if br.Arrivals != br.Served+br.Rejected+br.Abandoned {
			problems = append(problems, fmt.Sprintf(
				"backend replica %d does not cross-foot: arrivals %d != served %d + rejected %d + abandoned %d",
				br.Replica, br.Arrivals, br.Served, br.Rejected, br.Abandoned))
		}
		if br.Utilization < 0 || br.BusyNS < 0 || br.MeanWaitNS < 0 || br.P99WaitNS < 0 {
			problems = append(problems, fmt.Sprintf("backend replica %d has negative accounting: %+v", br.Replica, br))
		}
		if br.ReclaimedNS < 0 || br.AbandonedWorkFraction < 0 || br.AbandonedWorkFraction > 1 {
			problems = append(problems, fmt.Sprintf("backend replica %d waste accounting out of range: %+v", br.Replica, br))
		}
	}
	// Live shards plus the folded counters of shards retired by a
	// resize must account for every booked request.
	var shardServed, shardShed uint64
	for _, so := range r.ShardOccupancy {
		shardServed += uint64(so.Served)
		shardShed += uint64(so.Shed)
	}
	shardServed += uint64(r.RetiredServed)
	shardShed += uint64(r.RetiredShed)
	if len(r.ShardOccupancy) > 0 && (shardServed != r.Served || shardShed != r.Shed) {
		problems = append(problems, fmt.Sprintf("shard occupancy (live + retired) sums %d served / %d shed, report says %d / %d",
			shardServed, shardShed, r.Served, r.Shed))
	}
	if len(r.Classes) > 0 {
		var clsServed, clsShed, clsCanceled uint64
		for _, cr := range r.Classes {
			clsServed += cr.Served
			clsShed += cr.Shed
			clsCanceled += cr.Canceled
		}
		if clsServed != r.Served || clsShed != r.Shed || clsCanceled != r.Canceled {
			problems = append(problems, fmt.Sprintf(
				"class rows sum to %d served / %d shed / %d canceled, report says %d / %d / %d",
				clsServed, clsShed, clsCanceled, r.Served, r.Shed, r.Canceled))
		}
	}

	if r.Energy == nil {
		problems = append(problems, "report has no energy ledger block")
	} else {
		e := r.Energy
		for _, n := range []struct {
			name string
			v    float64
		}{
			{"device_base_j", e.DeviceBaseJ}, {"radio_j", e.RadioJ}, {"device_j", e.DeviceJ},
			{"shard_idle_j", e.ShardIdleJ}, {"shard_active_j", e.ShardActiveJ},
			{"shard_j", e.ShardJ}, {"fleet_j", e.FleetJ}, {"per_answered_j", e.PerAnsweredJ},
		} {
			if n.v < 0 {
				problems = append(problems, fmt.Sprintf("energy.%s negative: %g", n.name, n.v))
			}
		}
		if !near(e.DeviceBaseJ+e.RadioJ, e.DeviceJ) {
			problems = append(problems, fmt.Sprintf("energy: device base %g + radio %g != device %g",
				e.DeviceBaseJ, e.RadioJ, e.DeviceJ))
		}
		if !near(e.ShardIdleJ+e.ShardActiveJ, e.ShardJ) {
			problems = append(problems, fmt.Sprintf("energy: shard idle %g + active %g != shard %g",
				e.ShardIdleJ, e.ShardActiveJ, e.ShardJ))
		}
		if !near(e.DeviceJ+e.ShardJ, e.FleetJ) {
			problems = append(problems, fmt.Sprintf("energy: device %g + shard %g != fleet %g",
				e.DeviceJ, e.ShardJ, e.FleetJ))
		}
		if !near(e.DeviceJ, r.EnergyJ) {
			problems = append(problems, fmt.Sprintf(
				"energy: ledger device joules %g disagree with collector energy_j %g", e.DeviceJ, r.EnergyJ))
		}
		if answered := int64(r.Served) - int64(r.Unavailable); answered > 0 &&
			!near(e.PerAnsweredJ*float64(answered), e.FleetJ) {
			problems = append(problems, fmt.Sprintf("energy: per_answered %g × %d answered != fleet %g",
				e.PerAnsweredJ, answered, e.FleetJ))
		}
	}

	if !autoscaleOn && r.Autoscale != nil {
		problems = append(problems, "autoscale block present with the autoscaler off")
	}
	if autoscaleOn {
		if r.Autoscale == nil {
			problems = append(problems, "autoscaler on but the report has no autoscale block")
		} else {
			a := r.Autoscale
			if a.Samples <= 0 {
				problems = append(problems, "autoscaler on but recorded no occupancy samples")
			}
			cur := -1
			for i, act := range a.Actions {
				if act.To < a.Min || act.To > a.Max {
					problems = append(problems, fmt.Sprintf("autoscale action %d targets %d shards, outside [%d, %d]",
						i, act.To, a.Min, a.Max))
				}
				if act.To == act.From {
					problems = append(problems, fmt.Sprintf("autoscale action %d is a no-op resize at %d shards", i, act.To))
				}
				if cur >= 0 && act.From != cur {
					problems = append(problems, fmt.Sprintf(
						"autoscale actions do not chain: action %d starts from %d shards, previous ended at %d",
						i, act.From, cur))
				}
				cur = act.To
			}
			if cur >= 0 && a.FinalShards != cur {
				problems = append(problems, fmt.Sprintf("autoscale final shard count %d != last action target %d",
					a.FinalShards, cur))
			}
		}
	}
	return problems
}

// near reports whether two joule totals agree within the ledger's
// rounding slack: the ledger accumulates in integer nanojoules while
// the collector sums float64 per response, so totals drift by at most
// a relative hair.
func near(a, b float64) bool {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) <= 1e-6*scale
}

// Command loadtest drives a fleet of pocket cloudlets with calibrated
// load and reports latency percentiles, throughput, hit rate and shed
// rate. Two protocols are supported:
//
//   - open (default): requests arrive as a Poisson process at -qps,
//     replayed from the community month log for -duration. Overload
//     shows up as queue sheds and wall-latency inflation.
//   - closed: every user of the -users population replays their own
//     month stream concurrently, waiting for each response. With
//     -duration 0 each user replays exactly one month, which makes the
//     run's counters fully deterministic given -seed.
//
// Miss batching (-batch) coalesces concurrent cloud misses into shared
// radio sessions — one wake-up, one handshake, one tail per batch —
// capped at -batchmax misses after a -batchlinger collection window
// (sized adaptively from the miss arrival rate with -batchadaptive),
// per shard by default or fleet-wide with -batchwide. The report's
// energy figures (energy_per_query_j, radio_energy_per_miss_j,
// radio_wakeups) quantify the savings; per-user hit/miss outcomes are
// unchanged for the same seed.
//
// Fault injection (-faults) turns on the deterministic connectivity
// fault model on the cloud-miss path: -loss drops each radio attempt
// with the given probability, -engineerr injects transient cloud
// errors, and -outage declares dead zones in model time ("6s/30s" =
// down the first 6s of every 30s; "10s-20s,40s-45s" = absolute
// windows). Failed misses retry up to -retries attempts with capped
// exponential backoff, then degrade: a stale answer from the personal
// or community cache, or an explicit "results unavailable" page. The
// report's answered_rate, degraded, unavailable, retries, exhausted
// and breaker_opens fields quantify availability under the scenario.
// Fault counters are seed-deterministic except when -batch is combined
// with -outage: outage exposure follows each user's model clock, which
// batch composition (wall-clock timing) legitimately shifts.
//
// Example (the acceptance run):
//
//	loadtest -users 10000 -duration 5s -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pocketcloudlets"
	"pocketcloudlets/internal/engine"
)

func main() {
	var (
		mode        = flag.String("mode", "open", "load protocol: open (Poisson at -qps) or closed (-users concurrent users)")
		users       = flag.Int("users", 4000, "simulated user population (and closed-loop concurrency)")
		qps         = flag.Float64("qps", 2000, "open-loop target arrival rate")
		duration    = flag.Duration("duration", 5*time.Second, "run length; 0 in closed mode replays exactly one month")
		shards      = flag.Int("shards", 8, "user shards (community cache replicas)")
		workers     = flag.Int("workers", 0, "worker pool size; 0 selects min(shards, GOMAXPROCS)")
		queue       = flag.Int("queue", 1024, "per-worker queue depth before shedding")
		seed        = flag.Int64("seed", 1, "simulation and arrival-schedule seed")
		share       = flag.Float64("share", 0.55, "community cache cumulative-volume share")
		month       = flag.Int("month", 1, "month to replay (content is built from the preceding month)")
		radioName   = flag.String("radio", "3g", "radio technology: 3g, edge, wifi")
		userBudget  = flag.Int64("userbudget", 0, "per-user personal flash cap in bytes; 0 = unlimited")
		fleetBut    = flag.Int64("fleetbudget", 0, "fleet-wide personal flash budget in bytes; 0 = default 2.5 GB")
		batch       = flag.Bool("batch", false, "coalesce concurrent cloud misses into batched radio sessions")
		batchMax    = flag.Int("batchmax", 0, "max misses per batched radio session; 0 = default 16")
		batchLinger = flag.Duration("batchlinger", 0, "how long a dispatcher holds an open batch for more misses; 0 = default 200µs")
		batchWide   = flag.Bool("batchwide", false, "pool misses fleet-wide into one dispatcher instead of one per shard")
		adaptive    = flag.Bool("batchadaptive", false, "size the batch linger window from the observed miss arrival rate")
		faultsOn    = flag.Bool("faults", false, "enable the deterministic connectivity-fault model")
		loss        = flag.Float64("loss", 0, "per-attempt probability a radio exchange is dropped (with -faults)")
		engineErr   = flag.Float64("engineerr", 0, "per-attempt probability of a transient cloud engine error (with -faults)")
		outage      = flag.String("outage", "", `outage spec (with -faults): "6s/30s" duty cycle or "10s-20s,40s-45s" windows`)
		retries     = flag.Int("retries", 0, "max radio attempts per cloud miss; 0 = default 4")
		faultSeed   = flag.Int64("faultseed", 0, "fault-model seed; 0 reuses -seed")
		check       = flag.Bool("check", false, "verify report invariants after the run and exit non-zero on violation")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON only")
	)
	flag.Parse()

	var tech pocketcloudlets.RadioTech
	switch strings.ToLower(*radioName) {
	case "3g":
		tech = pocketcloudlets.Radio3G
	case "edge":
		tech = pocketcloudlets.RadioEDGE
	case "wifi":
		tech = pocketcloudlets.RadioWiFi
	default:
		fmt.Fprintf(os.Stderr, "unknown radio %q\n", *radioName)
		os.Exit(2)
	}

	progress := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	progress("building ecosystem: %d users, seed %d...\n", *users, *seed)
	ucfg := engine.Config{
		NavPairs:    24000,
		NonNavPairs: 120000,
		NonNavSegments: []engine.Segment{
			{Queries: 100, ResultsPerQuery: 6},
			{Queries: 400, ResultsPerQuery: 4},
			{Queries: 1500, ResultsPerQuery: 3},
			{Queries: 8000, ResultsPerQuery: 2},
		},
	}
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
		Seed: *seed, Users: *users, UniverseConfig: &ucfg,
	})
	if err != nil {
		fail(err)
	}
	content, err := sim.CommunityContent(*month-1, *share)
	if err != nil {
		fail(err)
	}
	progress("community content: %d pairs covering %.0f%% of volume\n",
		len(content.Triplets), 100*content.CoveredShare)

	var faultOpts pocketcloudlets.FaultOptions
	if *faultsOn {
		faultOpts.Enabled = true
		faultOpts.Seed = *faultSeed
		if faultOpts.Seed == 0 {
			faultOpts.Seed = *seed
		}
		faultOpts.LossProb = *loss
		faultOpts.EngineErrProb = *engineErr
		if *outage != "" {
			every, down, windows, err := pocketcloudlets.ParseOutageSpec(*outage)
			if err != nil {
				fail(err)
			}
			faultOpts.OutageEvery, faultOpts.OutageFor, faultOpts.Windows = every, down, windows
		}
	}

	col := pocketcloudlets.NewLoadCollector()
	f, err := sim.NewFleet(content, pocketcloudlets.FleetConfig{
		Shards:             *shards,
		Workers:            *workers,
		QueueDepth:         *queue,
		Radio:              tech.Params(),
		PerUserBytes:       *userBudget,
		TotalPersonalBytes: *fleetBut,
		Batch: pocketcloudlets.FleetBatchOptions{
			Enabled:        *batch,
			MaxBatch:       *batchMax,
			Linger:         *batchLinger,
			FleetWide:      *batchWide,
			AdaptiveLinger: *adaptive,
		},
		Faults:   faultOpts,
		Retry:    pocketcloudlets.RetryPolicy{MaxAttempts: *retries},
		Observer: col,
	})
	if err != nil {
		fail(err)
	}
	defer f.Close()
	progress("fleet up: %d shards, %d workers, queue depth %d, radio %s, batching %v, faults %v\n",
		f.NumShards(), f.NumWorkers(), *queue, tech, *batch, *faultsOn)

	var report pocketcloudlets.LoadReport
	switch *mode {
	case "open":
		progress("open loop: %.0f QPS for %v...\n", *qps, *duration)
		report, err = sim.RunOpenLoad(f, col, pocketcloudlets.OpenLoadConfig{
			QPS: *qps, Duration: *duration, Month: *month, Seed: *seed,
		})
	case "closed":
		progress("closed loop: %d concurrent users...\n", *users)
		report, err = sim.RunClosedLoad(f, col, pocketcloudlets.ClosedLoadConfig{
			Users: *users, Month: *month, Duration: *duration, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want open or closed)\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		raw, jerr := report.JSON()
		if jerr != nil {
			fail(jerr)
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(report.String())
	}
	if *check {
		if problems := checkReport(report, *faultsOn); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "check failed: %s\n", p)
			}
			os.Exit(1)
		}
		progress("checks passed\n")
	}
}

// checkReport verifies the report's accounting invariants: every
// submission is booked exactly once, every served request came from
// exactly one tier, and the fault counters are silent when fault
// injection is off.
func checkReport(r pocketcloudlets.LoadReport, faultsOn bool) []string {
	var problems []string
	if r.Errors != 0 {
		problems = append(problems, fmt.Sprintf("errors: %d", r.Errors))
	}
	if r.Requests != r.Served+r.Shed+r.Canceled {
		problems = append(problems, fmt.Sprintf("requests %d != served %d + shed %d + canceled %d",
			r.Requests, r.Served, r.Shed, r.Canceled))
	}
	tiers := r.PersonalHits + r.CommunityHits + r.CloudMisses + r.Degraded + r.Unavailable
	if tiers+r.Errors != r.Served {
		problems = append(problems, fmt.Sprintf("tier counts %d + errors %d != served %d", tiers, r.Errors, r.Served))
	}
	if !faultsOn && r.Degraded+r.Unavailable+uint64(r.Retries)+uint64(r.Exhausted)+uint64(r.BreakerOpens) != 0 {
		problems = append(problems, fmt.Sprintf("fault counters nonzero with faults off: degraded %d unavailable %d retries %d exhausted %d breaker %d",
			r.Degraded, r.Unavailable, r.Retries, r.Exhausted, r.BreakerOpens))
	}
	return problems
}

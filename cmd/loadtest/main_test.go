package main

import (
	"flag"
	"math"
	"strings"
	"testing"
	"time"

	"pocketcloudlets/internal/scenario"
)

// parse runs the real flag definitions over a command line, so tests
// exercise exactly what main sees.
func parse(t *testing.T, args ...string) *runFlags {
	t.Helper()
	var rf runFlags
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	rf.register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	rf.noteSet(fs)
	return &rf
}

func TestValidateDefaultsAreRunnable(t *testing.T) {
	if problems := parse(t).validate(); len(problems) != 0 {
		t.Errorf("default flags should validate: %v", problems)
	}
}

func TestValidateCatchesBadFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring of the expected problem
	}{
		{[]string{"-shards", "0"}, "-shards"},
		{[]string{"-shards", "-3"}, "-shards"},
		{[]string{"-workers", "-1"}, "-workers"},
		{[]string{"-users", "0"}, "-users"},
		{[]string{"-queue", "0"}, "-queue"},
		{[]string{"-qps", "0"}, "-qps"},
		{[]string{"-mode", "open", "-duration", "0"}, "-duration"},
		{[]string{"-mode", "sideways"}, "-mode"},
		{[]string{"-share", "1.5"}, "-share"},
		{[]string{"-share", "0"}, "-share"},
		{[]string{"-month", "0"}, "-month"},
		{[]string{"-radio", "5g"}, "-radio"},
		{[]string{"-userbudget", "-1"}, "-userbudget"},
		{[]string{"-batchmax", "4"}, "-batchmax requires -batch"},
		{[]string{"-batchlinger", "1ms"}, "-batchlinger requires -batch"},
		{[]string{"-batchwide"}, "-batchwide requires -batch"},
		{[]string{"-batchadaptive"}, "-batchadaptive requires -batch"},
		{[]string{"-batch", "-batchmax", "-2"}, "-batchmax"},
		{[]string{"-loss", "0.5"}, "-loss requires -faults"},
		{[]string{"-engineerr", "0.1"}, "-engineerr requires -faults"},
		{[]string{"-outage", "6s/30s"}, "-outage requires -faults"},
		{[]string{"-retries", "3"}, "-retries requires -faults"},
		{[]string{"-faultseed", "7"}, "-faultseed requires -faults"},
		{[]string{"-faults", "-loss", "1.5"}, "-loss"},
		{[]string{"-faults", "-outage", "gibberish"}, "-outage"},
		{[]string{"-placement", "rendezvous"}, "-placement"},
		{[]string{"-vnodes", "-1"}, "-vnodes"},
		{[]string{"-vnodes", "32"}, "-vnodes only applies"},
		{[]string{"-resize-to", "-2"}, "-resize-to"},
		{[]string{"-resize-at", "-1s"}, "-resize-at"},
		{[]string{"-resize-drop"}, "-resize-drop requires -resize-to"},
		{[]string{"-arrivals", "weekly"}, "-arrivals"},
		{[]string{"-mode", "closed", "-arrivals", "diurnal"}, "-arrivals only applies"},
		{[]string{"-diurnal-peak", "4"}, "-diurnal-peak requires -arrivals diurnal"},
		{[]string{"-arrivals", "diurnal", "-diurnal-peak", "0.5"}, "-diurnal-peak"},
		{[]string{"-pace", "0.01"}, "-pace only applies"},
		{[]string{"-mode", "closed", "-pace", "-1"}, "-pace"},
		{[]string{"-backend-rate", "50"}, "-backend-rate requires -faults"},
		{[]string{"-backend-queue", "8"}, "-backend-queue requires -backend-rate"},
		{[]string{"-backend-disc", "ps"}, "-backend-disc requires -backend-rate"},
		{[]string{"-backend-dist", "fixed"}, "-backend-dist requires -backend-rate"},
		{[]string{"-backend-offered", "20"}, "-backend-offered requires -backend-rate"},
		{[]string{"-backend-cancel"}, "-backend-cancel requires -backend-rate"},
		{[]string{"-faults", "-backend-rate", "fast"}, "bad -backend-rate"},
		{[]string{"-faults", "-backend-rate", "-5"}, "bad -backend-rate"},
		{[]string{"-faults", "-backend-rate", "0"}, "bad -backend-rate"},
		{[]string{"-faults", "-backend-rate", "50", "-backend-queue", "-1"}, "-backend-queue"},
		{[]string{"-faults", "-backend-rate", "50", "-backend-disc", "lifo"}, "-backend-disc"},
		{[]string{"-faults", "-backend-rate", "50", "-backend-dist", "pareto"}, "-backend-dist"},
		{[]string{"-faults", "-backend-rate", "50", "-backend-offered", "-2"}, "-backend-offered"},
	}
	for _, tc := range cases {
		problems := parse(t, tc.args...).validate()
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("args %v: problems %v do not mention %q", tc.args, problems, tc.want)
		}
	}
}

func TestValidateAcceptsRealInvocations(t *testing.T) {
	cases := [][]string{
		{"-mode", "closed", "-users", "100", "-duration", "0", "-seed", "3",
			"-faults", "-loss", "0.3", "-outage", "6s/30s", "-retries", "3",
			"-batch", "-batchadaptive", "-check", "-json"},
		{"-placement", "ring", "-vnodes", "128", "-resize-to", "12", "-resize-at", "2s"},
		{"-placement", "ring", "-resize-to", "12", "-resize-drop"},
		{"-mode", "closed", "-duration", "0"},
		{"-arrivals", "diurnal", "-diurnal-peak", "4"},
		{"-arrivals", "peruser"},
		{"-mode", "closed", "-duration", "0", "-pace", "0.001"},
		{"-faults", "-loss", "0.1", "-backend-rate", "40", "-backend-queue", "32",
			"-backend-disc", "ps", "-backend-dist", "exp", "-backend-offered", "25",
			"-backend-cancel", "-check"},
		{"-faults", "-backend-rate", "inf"},
	}
	for _, args := range cases {
		if problems := parse(t, args...).validate(); len(problems) != 0 {
			t.Errorf("args %v should validate, got %v", args, problems)
		}
	}
}

func TestPlacementResolution(t *testing.T) {
	rf := parse(t, "-placement", "ring", "-shards", "8", "-vnodes", "16")
	p, err := rf.placement()
	if err != nil || p == nil {
		t.Fatalf("ring placement: %v, %v", p, err)
	}
	if p.Name() != "ring" || p.Shards() != 8 {
		t.Errorf("got %s/%d", p.Name(), p.Shards())
	}
	rf = parse(t)
	if p, err := rf.placement(); err != nil || p != nil {
		t.Errorf("modulo must resolve to nil (fleet default), got %v, %v", p, err)
	}
}

func TestResizeFlagDefaults(t *testing.T) {
	rf := parse(t)
	if rf.resizeTo != 0 || rf.resizeAt != time.Second || rf.resizeDrop {
		t.Errorf("resize defaults changed: %+v", rf)
	}
}

func TestScenarioFlagConflicts(t *testing.T) {
	// Every workload-shaping flag conflicts with -scenario; each
	// conflict names the flag so the fix is obvious.
	conflicting := [][]string{
		{"-mode", "closed"},
		{"-qps", "500"},
		{"-duration", "1s"},
		{"-arrivals", "diurnal"},
		{"-pace", "0.1"},
		{"-shards", "4"},
		{"-workers", "2"},
		{"-queue", "64"},
		{"-share", "0.4"},
		{"-month", "2"},
		{"-radio", "wifi"},
		{"-placement", "ring"},
		{"-batch"},
		{"-faults"},
		{"-loss", "0.1"},
		{"-resize-to", "4"},
	}
	for _, extra := range conflicting {
		args := append([]string{"-scenario", "flash-crowd"}, extra...)
		problems := parse(t, args...).validate()
		found := false
		for _, p := range problems {
			if strings.Contains(p, extra[0]+" conflicts with -scenario") {
				found = true
			}
		}
		if !found {
			t.Errorf("args %v: problems %v do not flag the %s conflict", args, problems, extra[0])
		}
	}
}

func TestScenarioFlagComposition(t *testing.T) {
	// -users, -seed, -json and -check compose with -scenario.
	ok := [][]string{
		{"-scenario", "flash-crowd"},
		{"-scenario", "mixed-fleet", "-users", "200", "-seed", "7"},
		{"-scenario", "commuter", "-json", "-check"},
	}
	for _, args := range ok {
		if problems := parse(t, args...).validate(); len(problems) != 0 {
			t.Errorf("args %v should validate, got %v", args, problems)
		}
	}
	problems := parse(t, "-scenario", "commuter", "-users", "0").validate()
	if len(problems) == 0 {
		t.Error("-scenario with -users 0 should fail")
	}
}

func TestToSpecCompiles(t *testing.T) {
	// The flag funnel must produce a spec the scenario compiler
	// accepts, for both modes and with the kitchen sink on.
	cases := [][]string{
		{},
		{"-mode", "closed", "-duration", "0", "-pace", "0.01"},
		{"-arrivals", "diurnal", "-diurnal-peak", "6"},
		{"-mode", "closed", "-faults", "-loss", "0.3", "-outage", "6s/30s", "-retries", "3",
			"-batch", "-batchadaptive"},
		{"-placement", "ring", "-vnodes", "64"},
		{"-faults", "-loss", "0.1", "-backend-rate", "40", "-backend-queue", "32",
			"-backend-disc", "ps", "-backend-offered", "25", "-backend-cancel"},
	}
	for _, args := range cases {
		rf := parse(t, args...)
		if problems := rf.validate(); len(problems) != 0 {
			t.Fatalf("args %v should validate, got %v", args, problems)
		}
		spec := rf.toSpec()
		comp, err := scenario.Compile(spec, "")
		if err != nil {
			t.Errorf("args %v: compiled spec rejected: %v", args, err)
			continue
		}
		if len(spec.Classes) != 1 || spec.Classes[0].Name != "default" {
			t.Errorf("args %v: flag funnel should produce one \"default\" class, got %+v", args, spec.Classes)
		}
		switch rf.mode {
		case "open":
			if comp.Open.ClassTag != "default" {
				t.Errorf("args %v: open class tag %q", args, comp.Open.ClassTag)
			}
		case "closed":
			if comp.Closed.ClassTag != "default" {
				t.Errorf("args %v: closed class tag %q", args, comp.Closed.ClassTag)
			}
		}
	}
}

func TestToSpecLowersBackendFlags(t *testing.T) {
	rf := parse(t, "-faults", "-loss", "0.1", "-backend-rate", "40", "-backend-queue", "32",
		"-backend-disc", "ps", "-backend-dist", "fixed", "-backend-offered", "25", "-backend-cancel")
	if problems := rf.validate(); len(problems) != 0 {
		t.Fatalf("backend flags should validate, got %v", problems)
	}
	spec := rf.toSpec()
	b := spec.Fleet.Backend
	if b == nil {
		t.Fatal("toSpec dropped the backend block")
	}
	if float64(b.ServiceRate) != 40 || b.Queue != 32 || b.Discipline != "ps" ||
		b.Dist != "fixed" || b.Offered != 25 || !b.CancelOnWin {
		t.Errorf("backend block mislowered: %+v", *b)
	}
	comp, err := scenario.Compile(spec, "")
	if err != nil {
		t.Fatalf("compiled backend spec rejected: %v", err)
	}
	cfg, err := comp.FleetConfig(nil)
	if err != nil {
		t.Fatalf("FleetConfig: %v", err)
	}
	if !cfg.Backend.Enabled {
		t.Error("compiled fleet config should have the backend enabled")
	}
}

func TestParseRate(t *testing.T) {
	if v, err := parseRate("inf"); err != nil || !math.IsInf(v, 1) {
		t.Errorf(`parseRate("inf") = %v, %v`, v, err)
	}
	if v, err := parseRate("12.5"); err != nil || v != 12.5 {
		t.Errorf(`parseRate("12.5") = %v, %v`, v, err)
	}
	for _, bad := range []string{"fast", "0", "-3", "nan", "-inf"} {
		if _, err := parseRate(bad); err == nil {
			t.Errorf("parseRate(%q) should fail", bad)
		}
	}
}

// Command experiments regenerates every table and figure of the Pocket
// Cloudlets paper from the simulated system.
//
// Usage:
//
//	experiments                 # run everything (several minutes)
//	experiments -run fig17      # run one experiment
//	experiments -list           # list experiment names
//	experiments -quick          # smaller replay samples (faster)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pocketcloudlets/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment names (default: all)")
		list  = flag.Bool("list", false, "list experiment names and exit")
		quick = flag.Bool("quick", false, "use smaller replay samples for faster runs")
		seed  = flag.Int64("seed", 1, "simulation seed")
		users = flag.Int("users", 0, "community population size (0 = calibrated default)")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			heavy := ""
			if s.Heavy {
				heavy = " (heavy)"
			}
			fmt.Printf("  %-20s %s%s\n", s.Name, s.ID, heavy)
		}
		return
	}

	usersPerClass := 100
	if *quick {
		usersPerClass = 25
	}
	lab := experiments.NewLab(*seed, *users, usersPerClass)

	var specs []experiments.Spec
	if *run == "" {
		specs = experiments.All()
	} else {
		for _, name := range strings.Split(*run, ",") {
			s, ok := experiments.Find(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}

	start := time.Now()
	for _, s := range specs {
		t0 := time.Now()
		table := s.Run(lab)
		table.Notes = append(table.Notes, fmt.Sprintf("computed in %v", time.Since(t0).Round(time.Millisecond)))
		table.Render(os.Stdout)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

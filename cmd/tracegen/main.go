// Command tracegen generates a synthetic mobile search log in the
// plain-text interchange format of internal/searchlog — the stand-in
// for the paper's m.bing.com logs. The output can be analyzed with
// cmd/logstats.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

func main() {
	var (
		users = flag.Int("users", 2000, "population size")
		seed  = flag.Int64("seed", 1, "generator seed")
		month = flag.Int("month", 0, "month index to generate")
		out   = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	u := engine.MustUniverse(engine.DefaultConfig())
	g, err := workload.New(workload.DefaultConfig(u, *users, *seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log := g.MonthLog(*month)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := searchlog.Write(bw, log, u); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries (%d users, month %d)\n", len(log.Entries), *users, *month)
}

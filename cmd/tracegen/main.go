// Command tracegen generates a synthetic mobile search log in the
// plain-text interchange format of internal/searchlog — the stand-in
// for the paper's m.bing.com logs. The output can be analyzed with
// cmd/logstats.
//
// With -scenario <file|preset>, tracegen instead materializes the
// scenario's open-loop arrival schedule as a replayable request trace
// (internal/scenario trace format): every arrival with its release
// offset, user, SLO-class tag, query and click. The trace is drawn
// against the same corpus cmd/loadtest builds, so
//
//	tracegen -scenario flash-crowd -o crowd.trace
//	loadtest -scenario replay.json        # {"mode": "trace", "trace": "crowd.trace", ...}
//
// replays byte-identical per-user requests, run after run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/scenario"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

func main() {
	var (
		users   = flag.Int("users", 2000, "population size (ignored with -scenario; use the spec or loadtest -users)")
		seed    = flag.Int64("seed", 1, "generator seed (ignored with -scenario)")
		month   = flag.Int("month", 0, "month index to generate (ignored with -scenario)")
		scenRef = flag.String("scenario", "", "materialize this scenario's open-loop schedule as a replayable trace instead of a search log")
		out     = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	if *scenRef != "" {
		spec, source, err := scenario.Load(*scenRef)
		if err != nil {
			fail(err)
		}
		comp, err := scenario.Compile(spec, source)
		if err != nil {
			fail(err)
		}
		// The corpus must match cmd/loadtest's, or the recorded queries
		// would not exist in the replaying fleet's universe.
		ucfg := scenario.UniverseConfig()
		u, err := engine.NewUniverse(ucfg)
		if err != nil {
			fail(err)
		}
		g, err := workload.New(workload.DefaultConfig(u, spec.Users, spec.Seed))
		if err != nil {
			fail(err)
		}
		events, err := comp.Materialize(g)
		if err != nil {
			fail(err)
		}
		if err := scenario.WriteTrace(w, events); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events (%s, %d users, seed %d)\n",
			len(events), source, spec.Users, spec.Seed)
		return
	}

	u := engine.MustUniverse(engine.DefaultConfig())
	g, err := workload.New(workload.DefaultConfig(u, *users, *seed))
	if err != nil {
		fail(err)
	}
	log := g.MonthLog(*month)

	bw := bufio.NewWriter(w)
	if err := searchlog.Write(bw, log, u); err != nil {
		fail(err)
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries (%d users, month %d)\n", len(log.Entries), *users, *month)
}

// Command reportnorm canonicalizes a cmd/loadtest JSON report so two
// reports can be compared byte-for-byte for *model* determinism. The
// modeled outcome of a run is a pure function of its configuration and
// seeds (DESIGN.md, "Model time"; "Hedged misses and replicas"), but
// the report also records host-side measurements that legitimately
// vary run to run. reportnorm reads a report on stdin and writes it
// back with:
//
//   - wall-clock fields removed (elapsed_ns, served_qps, wall_latency,
//     max_schedule_lag_ns, heap_alloc_bytes) — these measure the host,
//     not the model;
//   - the replica presentation fields removed (replicas,
//     replica_breaker_opens) — a replicated fleet with hedging off is
//     required to be model-identical to a single-backend fleet, and
//     these two fields are the only permitted report differences;
//   - floating-point values reformatted at 9 significant digits —
//     energy totals are accumulated across worker goroutines and the
//     summation order perturbs the last few ulps;
//   - object keys sorted and output indented.
//
// scripts/check.sh diffs the normalized reports of a single-backend
// run and a -replicas 3 -hedge 1 run as the hedged-determinism gate,
// and scripts/bench.sh embeds a normalized hedged report in the bench
// snapshot so hedge counters can be diffed across commits.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// volatileKeys are deleted wherever they appear (top level, per-class
// rows, nested latency blocks).
var volatileKeys = map[string]bool{
	"elapsed_ns":            true,
	"served_qps":            true,
	"wall_latency":          true,
	"max_schedule_lag_ns":   true,
	"heap_alloc_bytes":      true,
	"replicas":              true,
	"replica_breaker_opens": true,
}

func normalize(v any) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			if volatileKeys[k] {
				delete(t, k)
				continue
			}
			t[k] = normalize(e)
		}
		return t
	case []any:
		for i, e := range t {
			t[i] = normalize(e)
		}
		return t
	case json.Number:
		s := t.String()
		if !strings.ContainsAny(s, ".eE") {
			return t // integer: already canonical
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return t
		}
		return json.Number(strconv.FormatFloat(f, 'g', 9, 64))
	default:
		return v
	}
}

func main() {
	dec := json.NewDecoder(os.Stdin)
	dec.UseNumber()
	var report any
	if err := dec.Decode(&report); err != nil {
		fmt.Fprintf(os.Stderr, "reportnorm: %v\n", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(normalize(report), "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "reportnorm: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}

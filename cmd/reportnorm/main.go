// Command reportnorm canonicalizes a cmd/loadtest JSON report so two
// reports can be compared byte-for-byte for *model* determinism. The
// modeled outcome of a run is a pure function of its configuration and
// seeds (DESIGN.md, "Model time"; "Hedged misses and replicas"), but
// the report also records host-side measurements that legitimately
// vary run to run. reportnorm reads a report on stdin and writes it
// back with:
//
//   - wall-clock fields removed (elapsed_ns, served_qps, wall_latency,
//     max_schedule_lag_ns, heap_alloc_bytes) — these measure the host,
//     not the model;
//   - the replica presentation fields removed (replicas,
//     replica_breaker_opens) — a replicated fleet with hedging off is
//     required to be model-identical to a single-backend fleet, and
//     these two fields are the only permitted report differences;
//   - the per-replica backend rows removed ("backend") — they are keyed
//     by replica index, so the single-backend vs replicated comparison
//     that check.sh runs would trivially differ; pass -keep backend to
//     retain them (scripts/bench.sh does, so backend counters can be
//     diffed across commits);
//   - the energy-ledger and autoscale blocks removed ("energy",
//     "autoscale") — new report rows must not break byte-identity
//     comparisons against reports from older configurations; pass
//     -keep energy / -keep autoscale to retain them (scripts/bench.sh
//     keeps energy, so J/answered can be diffed across commits);
//   - floating-point values reformatted at 9 significant digits —
//     energy totals are accumulated across worker goroutines and the
//     summation order perturbs the last few ulps;
//   - object keys sorted and output indented.
//
// scripts/check.sh diffs the normalized reports of a single-backend
// run and a -replicas 3 -hedge 1 run as the hedged-determinism gate,
// and scripts/bench.sh embeds a normalized hedged report in the bench
// snapshot so hedge counters can be diffed across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// volatileKeys are deleted wherever they appear (top level, per-class
// rows, nested latency blocks). Unlike defaultStrip, -keep cannot
// restore them: they measure the host, never the model.
var volatileKeys = map[string]bool{
	"elapsed_ns":            true,
	"served_qps":            true,
	"wall_latency":          true,
	"max_schedule_lag_ns":   true,
	"heap_alloc_bytes":      true,
	"replicas":              true,
	"replica_breaker_opens": true,
}

// defaultStrip keys are model-deterministic but presentation-variant
// (per-replica shape, or report rows newer than the comparison
// baseline), so they are stripped unless named in -keep.
var defaultStrip = map[string]bool{
	"backend":   true,
	"energy":    true,
	"autoscale": true,
}

// stripSet resolves the final delete set: all volatile keys, plus the
// default-stripped keys not named in the comma-separated keep list.
func stripSet(keep string) (map[string]bool, error) {
	strip := make(map[string]bool, len(volatileKeys)+len(defaultStrip))
	for k := range volatileKeys {
		strip[k] = true
	}
	for k := range defaultStrip {
		strip[k] = true
	}
	for _, k := range strings.Split(keep, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		if !defaultStrip[k] {
			return nil, fmt.Errorf("-keep %q: not a default-stripped key (want \"backend\", \"energy\" or \"autoscale\")", k)
		}
		delete(strip, k)
	}
	return strip, nil
}

func normalize(v any, strip map[string]bool) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			if strip[k] {
				delete(t, k)
				continue
			}
			t[k] = normalize(e, strip)
		}
		return t
	case []any:
		for i, e := range t {
			t[i] = normalize(e, strip)
		}
		return t
	case json.Number:
		s := t.String()
		if !strings.ContainsAny(s, ".eE") {
			return t // integer: already canonical
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return t
		}
		return json.Number(strconv.FormatFloat(f, 'g', 9, 64))
	default:
		return v
	}
}

// run normalizes one report from in to out; keep is the raw -keep
// value. Split from main so the golden-file test can drive it.
func run(keep string, in io.Reader, out io.Writer) error {
	strip, err := stripSet(keep)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(in)
	dec.UseNumber()
	var report any
	if err := dec.Decode(&report); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(normalize(report, strip), "", "  ")
	if err != nil {
		return err
	}
	_, err = out.Write(append(buf, '\n'))
	return err
}

func main() {
	keep := flag.String("keep", "", "comma-separated default-stripped keys to retain (e.g. \"backend,energy\")")
	flag.Parse()
	if err := run(*keep, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "reportnorm: %v\n", err)
		os.Exit(1)
	}
}

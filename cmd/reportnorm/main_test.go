package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGolden pins the normalized output for a real loadtest report
// (testdata/report.json was produced by a hedged, backend-enabled,
// autoscaled run). Regenerate the goldens after an intentional format
// change with:
//
//	go run ./cmd/reportnorm < cmd/reportnorm/testdata/report.json > cmd/reportnorm/testdata/report.golden
//	go run ./cmd/reportnorm -keep backend < cmd/reportnorm/testdata/report.json > cmd/reportnorm/testdata/report_keep_backend.golden
//	go run ./cmd/reportnorm -keep energy < cmd/reportnorm/testdata/report.json > cmd/reportnorm/testdata/report_keep_energy.golden
//	go run ./cmd/reportnorm -keep autoscale < cmd/reportnorm/testdata/report.json > cmd/reportnorm/testdata/report_keep_autoscale.golden
func TestGolden(t *testing.T) {
	cases := []struct {
		keep   string
		golden string
	}{
		{"", "report.golden"},
		{"backend", "report_keep_backend.golden"},
		{"energy", "report_keep_energy.golden"},
		{"autoscale", "report_keep_autoscale.golden"},
	}
	in, err := os.ReadFile(filepath.Join("testdata", "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := run(tc.keep, bytes.NewReader(in), &out); err != nil {
			t.Fatalf("-keep %q: %v", tc.keep, err)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("-keep %q: output differs from %s (see regeneration note above)", tc.keep, tc.golden)
		}
	}
}

func TestGoldenStripsTheRightKeys(t *testing.T) {
	// Belt and braces next to the byte-exact check: the default golden
	// must not mention any stripped key, and each -keep golden must
	// restore exactly its own block.
	def, err := os.ReadFile(filepath.Join("testdata", "report.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for k := range volatileKeys {
		if strings.Contains(string(def), `"`+k+`"`) {
			t.Errorf("default golden still contains volatile key %q", k)
		}
	}
	for k := range defaultStrip {
		if strings.Contains(string(def), `"`+k+`"`) {
			t.Errorf("default golden still contains default-stripped key %q", k)
		}
	}
	for keep, golden := range map[string]string{
		"backend":   "report_keep_backend.golden",
		"energy":    "report_keep_energy.golden",
		"autoscale": "report_keep_autoscale.golden",
	} {
		kept, err := os.ReadFile(filepath.Join("testdata", golden))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(kept), `"`+keep+`"`) {
			t.Errorf("-keep %s golden lost its %q block", keep, keep)
		}
		for k := range defaultStrip {
			if k != keep && strings.Contains(string(kept), `"`+k+`"`) {
				t.Errorf("-keep %s golden contains default-stripped key %q", keep, k)
			}
		}
		for k := range volatileKeys {
			if strings.Contains(string(kept), `"`+k+`"`) {
				t.Errorf("-keep %s golden contains volatile key %q — -keep must not restore those", keep, k)
			}
		}
	}
}

func TestKeepRejectsUnknownKeys(t *testing.T) {
	if _, err := stripSet("elapsed_ns"); err == nil {
		t.Error("-keep elapsed_ns should be rejected: volatile keys are not restorable")
	}
	if _, err := stripSet("nonsense"); err == nil {
		t.Error("-keep nonsense should be rejected")
	}
	if _, err := stripSet(" backend , "); err != nil {
		t.Errorf("-keep with spaces should parse: %v", err)
	}
}
